package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"optrouter/internal/clip"
	"optrouter/internal/obs"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

// bigSynthGraph builds a larger clip than the differential corpus (6x7x4)
// so the parallel engine has a real tree to distribute (seed 3 under RULE8
// solves in a few hundred nodes).
func bigSynthGraph(tb testing.TB, seed int64, ruleName string) *rgraph.Graph {
	tb.Helper()
	opt := clip.DefaultSynth(seed)
	opt.NX, opt.NY, opt.NZ = 6, 7, 4
	opt.NumNets = 3
	opt.MaxSinks = 2
	c := clip.Synthesize(opt)
	c.Tech = "N28-12T"
	rule, ok := tech.RuleByName(ruleName)
	if !ok {
		tb.Fatalf("unknown rule %s", ruleName)
	}
	g, err := rgraph.Build(c, rgraph.Options{Rule: rule})
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// deterministicStats projects SolveStats onto the fields the parallel engine
// guarantees identical for every worker count. Scheduling-dependent fields
// (cache hits, per-worker splits, steals, wall times) are excluded by
// construction.
func deterministicStats(s SolveStats) map[string]int {
	return map[string]int{
		"nodes":          s.Nodes,
		"max_depth":      s.MaxDepth,
		"incumbents":     s.Incumbents,
		"bans_generated": s.BansGenerated,
		"drc_checks":     s.DRCChecks,
		"lag_rounds":     s.LagrangianRounds,
		"dives":          s.Dives,
	}
}

// TestParBnBDeterministicAcrossWorkers is the tentpole's determinism golden:
// the round-parallel engine must return byte-identical routes, the same
// objective/proof and the same deterministic search statistics for Par = 1,
// 2 and 8 — on a Steiner-heavy SADP case and a plain (MILP-friendly) case.
func TestParBnBDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct {
		name  string
		build func(tb testing.TB) *rgraph.Graph
	}{
		{"steiner-heavy-6x7x4-s3-RULE8", func(tb testing.TB) *rgraph.Graph { return bigSynthGraph(tb, 3, "RULE8") }},
		{"milp-heavy-4x5x3-s10-RULE1", func(tb testing.TB) *rgraph.Graph { return synthGraph(tb, 10, "RULE1") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build(t)
			var ref *Solution
			for _, par := range []int{1, 2, 8} {
				sol, err := SolveBnB(g, BnBOptions{Par: par, TimeLimit: 60 * time.Second})
				if err != nil {
					t.Fatalf("par=%d: %v", par, err)
				}
				if !sol.Proven {
					t.Fatalf("par=%d: no proof within budget (termination %s)", par, sol.Stats.Termination)
				}
				if sol.Stats.Par != par {
					t.Errorf("par=%d: Stats.Par = %d", par, sol.Stats.Par)
				}
				sum := 0
				for _, n := range sol.Stats.NodesPerWorker {
					sum += n
				}
				if sum != sol.Stats.Nodes {
					t.Errorf("par=%d: NodesPerWorker sums to %d, Nodes = %d", par, sum, sol.Stats.Nodes)
				}
				if ref == nil {
					ref = sol
					continue
				}
				if sol.Feasible != ref.Feasible || sol.Cost != ref.Cost {
					t.Fatalf("par=%d: (feasible=%v cost=%d), par=1 got (feasible=%v cost=%d)",
						par, sol.Feasible, sol.Cost, ref.Feasible, ref.Cost)
				}
				if !reflect.DeepEqual(sol.NetArcs, ref.NetArcs) {
					t.Errorf("par=%d: routes differ from par=1 (determinism violation)", par)
				}
				if got, want := deterministicStats(sol.Stats), deterministicStats(ref.Stats); !reflect.DeepEqual(got, want) {
					t.Errorf("par=%d: deterministic stats differ from par=1:\n got %v\nwant %v", par, got, want)
				}
			}
		})
	}
}

// TestParBnBSeedPermutesButAnswersHold: changing BnBOptions.Seed may permute
// tie-broken siblings (diversification) but never the answer.
func TestParBnBSeedPermutesButAnswersHold(t *testing.T) {
	g := synthGraph(t, 5, "RULE7")
	var ref *Solution
	for _, seed := range []int64{0, 1, 12345} {
		sol, err := SolveBnB(g, BnBOptions{Par: 2, Seed: seed, TimeLimit: 60 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Proven {
			t.Fatalf("seed=%d: no proof", seed)
		}
		if ref == nil {
			ref = sol
			continue
		}
		if sol.Feasible != ref.Feasible || sol.Cost != ref.Cost {
			t.Fatalf("seed=%d: (feasible=%v cost=%d) != (feasible=%v cost=%d)",
				seed, sol.Feasible, sol.Cost, ref.Feasible, ref.Cost)
		}
	}
}

// TestParBnBMatchesSerial: the parallel engine and the classic serial engine
// explore different trees but must agree on feasibility and optimal cost
// across the differential corpus.
func TestParBnBMatchesSerial(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		for _, rn := range []string{"RULE1", "RULE7", "RULE8"} {
			t.Run(fmt.Sprintf("seed%d-%s", seed, rn), func(t *testing.T) {
				g := synthGraph(t, seed, rn)
				serial, err := SolveBnB(g, BnBOptions{TimeLimit: 60 * time.Second})
				if err != nil {
					t.Fatal(err)
				}
				par, err := SolveBnB(g, BnBOptions{Par: 4, TimeLimit: 60 * time.Second})
				if err != nil {
					t.Fatal(err)
				}
				if !serial.Proven || !par.Proven {
					t.Skipf("no proof within budget (serial=%v par=%v)", serial.Proven, par.Proven)
				}
				if serial.Feasible != par.Feasible {
					t.Fatalf("feasibility disagreement: serial=%v par=%v", serial.Feasible, par.Feasible)
				}
				if serial.Feasible && serial.Cost != par.Cost {
					t.Fatalf("optimal cost disagreement: serial=%d par=%d", serial.Cost, par.Cost)
				}
			})
		}
	}
}

// TestPortfolioSolve races the two engines over the differential corpus: the
// portfolio must return the serial engine's proven optimum, name a winner,
// and record incumbent traffic through the exchange.
func TestPortfolioSolve(t *testing.T) {
	seeds := []int64{1, 3, 5, 7}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		for _, rn := range []string{"RULE1", "RULE8"} {
			t.Run(fmt.Sprintf("seed%d-%s", seed, rn), func(t *testing.T) {
				g := synthGraph(t, seed, rn)
				want, err := SolveBnB(g, BnBOptions{TimeLimit: 60 * time.Second})
				if err != nil {
					t.Fatal(err)
				}
				got, err := SolvePortfolio(g, BnBOptions{TimeLimit: 120 * time.Second})
				if err != nil {
					t.Fatal(err)
				}
				if !want.Proven || !got.Proven {
					t.Skipf("no proof within budget (serial=%v portfolio=%v)", want.Proven, got.Proven)
				}
				if got.Feasible != want.Feasible {
					t.Fatalf("feasibility disagreement: portfolio=%v serial=%v", got.Feasible, want.Feasible)
				}
				if want.Feasible && got.Cost != want.Cost {
					t.Fatalf("optimal cost disagreement: portfolio=%d serial=%d", got.Cost, want.Cost)
				}
				if got.Stats.Winner != "bnb" && got.Stats.Winner != "ilp" {
					t.Errorf("Stats.Winner = %q, want bnb or ilp", got.Stats.Winner)
				}
				if want.Feasible && got.Stats.IncumbentExchanges == 0 {
					t.Errorf("feasible portfolio solve recorded no accepted incumbent exchanges")
				}
			})
		}
	}
}

// TestPortfolioParallel combines both tentpole layers: the portfolio with a
// parallel BnB inside must still return the proven optimum.
func TestPortfolioParallel(t *testing.T) {
	g := synthGraph(t, 2, "RULE7")
	want, err := SolveBnB(g, BnBOptions{TimeLimit: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolvePortfolio(g, BnBOptions{Par: 4, TimeLimit: 120 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Proven || !got.Proven {
		t.Skipf("no proof within budget")
	}
	if got.Feasible != want.Feasible || (want.Feasible && got.Cost != want.Cost) {
		t.Fatalf("portfolio+par disagrees: got (feasible=%v cost=%d), want (feasible=%v cost=%d)",
			got.Feasible, got.Cost, want.Feasible, want.Cost)
	}
}

// TestParBnBFlightRecorder runs the parallel engine with per-node recording:
// workers emit node events concurrently, and the flight accounting
// (seen = kept + dropped, kept = events in the trace) must still balance.
func TestParBnBFlightRecorder(t *testing.T) {
	g := synthGraph(t, 3, "RULE7")
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	sol, err := SolveBnB(g, BnBOptions{
		Par:    4,
		Tracer: tr,
		Flight: obs.FlightOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if probs := obs.ValidateTrace(recs); len(probs) != 0 {
		t.Fatalf("trace not well-formed: %v", probs)
	}
	tree, err := obs.BuildTree(recs)
	if err != nil {
		t.Fatal(err)
	}
	var solve *obs.TraceNode
	nodeEvents := 0
	tree.Walk(func(n *obs.TraceNode) {
		if n.Name == "bnb.solve" {
			solve = n
		}
		if n.Event && n.Name == "node" {
			nodeEvents++
		}
	})
	if solve == nil {
		t.Fatal("no bnb.solve span in trace")
	}
	if par, _ := solve.AttrFloat("par"); int(par) != 4 {
		t.Errorf("solve span par attr = %v, want 4", par)
	}
	if nodeEvents == 0 {
		t.Fatal("flight recorder produced no node events")
	}
	seen, _ := solve.AttrFloat("flight_seen")
	kept, _ := solve.AttrFloat("flight_kept")
	dropped, _ := solve.AttrFloat("flight_dropped")
	if int(kept) != nodeEvents {
		t.Errorf("flight_kept = %v, but trace holds %d node events", kept, nodeEvents)
	}
	if int(seen) != int(kept)+int(dropped) {
		t.Errorf("flight accounting under concurrency: seen %v != kept %v + dropped %v", seen, kept, dropped)
	}
	if sol.Nodes == 0 {
		t.Error("solve explored no nodes")
	}
}
