package core

import (
	"container/heap"
	"math"

	"optrouter/internal/rgraph"
)

// steinerCtx is the per-net view of the routing graph used by the exact
// Steiner arborescence solver: arcs may be banned (by ownership rules or by
// branch-and-bound decisions) and arcs may carry extra penalties (used by
// the negotiated-congestion heuristic).
type steinerCtx struct {
	g       *rgraph.Graph
	net     int
	banned  []bool  // per arc
	penalty []int64 // per arc, added to base cost (nil = none)
	solves  int     // steinerTree invocations (observability)
}

func (c *steinerCtx) arcCost(a int32) int64 {
	cost := int64(c.g.Arcs[a].Cost)
	if c.penalty != nil {
		cost += c.penalty[a]
	}
	return cost
}

const infCost = math.MaxInt64 / 4

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	v    int32
	dist int64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// parentAction reconstructs Dreyfus-Wagner decisions.
type parentAction struct {
	// kind 0: none (base terminal), 1: arc step (arc id), 2: subset split
	// (submask; the complement is implied).
	kind    uint8
	arc     int32
	submask uint16
}

// steinerTree computes a minimum-cost Steiner arborescence for net k from
// its supersource to all its supersinks, honoring bans and penalties.
// Returns the used arcs, the total (penalized) cost, and feasibility.
//
// The algorithm is the Dijkstra-accelerated Dreyfus-Wagner dynamic program:
// dp[S][v] = min cost of an arborescence rooted at v covering sink set S,
// built by subset merging at v followed by a Dijkstra relaxation over
// incoming arcs. Terminal counts in clips are small (the paper's nets are
// 2-4 pins), so the 3^t term is negligible and per-subset Dijkstra over the
// clip graph dominates.
func steinerTree(c *steinerCtx) (arcs []int32, cost int64, ok bool) {
	c.solves++
	g := c.g
	src := g.Source[c.net]
	sinks := g.SinkVerts[c.net]
	t := len(sinks)
	if t == 0 {
		return nil, 0, true
	}
	if t > 16 {
		return nil, 0, false // out of scope for switchbox clips
	}
	nV := g.NumVerts
	full := (1 << t) - 1

	// dp[mask][v], parent[mask][v]
	dp := make([][]int64, full+1)
	par := make([][]parentAction, full+1)
	for m := 1; m <= full; m++ {
		dp[m] = make([]int64, nV)
		par[m] = make([]parentAction, nV)
		for v := range dp[m] {
			dp[m][v] = infCost
		}
	}
	for i, tv := range sinks {
		dp[1<<i][tv] = 0
	}

	for mask := 1; mask <= full; mask++ {
		d := dp[mask]
		p := par[mask]
		// Subset merge: dp[mask][v] = min over proper submasks containing
		// the lowest set bit (to halve enumeration).
		low := mask & (-mask)
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			if sub&low == 0 {
				continue
			}
			other := mask ^ sub
			ds, do := dp[sub], dp[other]
			for v := 0; v < nV; v++ {
				if ds[v] >= infCost || do[v] >= infCost {
					continue
				}
				if s := ds[v] + do[v]; s < d[v] {
					d[v] = s
					p[v] = parentAction{kind: 2, submask: uint16(sub)}
				}
			}
		}
		// Dijkstra relaxation: propagate along reversed arcs (dp values
		// live at tree roots; an arc u->v lets a root at u reach the
		// subtree rooted at v paying cost(u->v)).
		var q pq
		for v := 0; v < nV; v++ {
			if d[v] < infCost {
				q = append(q, pqItem{int32(v), d[v]})
			}
		}
		heap.Init(&q)
		for q.Len() > 0 {
			it := heap.Pop(&q).(pqItem)
			if it.dist > d[it.v] {
				continue
			}
			for _, aid := range g.In[it.v] {
				if c.banned[aid] {
					continue
				}
				u := g.Arcs[aid].From
				nd := it.dist + c.arcCost(aid)
				if nd < d[u] {
					d[u] = nd
					p[u] = parentAction{kind: 1, arc: aid}
					heap.Push(&q, pqItem{u, nd})
				}
			}
		}
		if mask == full {
			break
		}
	}

	if dp[full][src] >= infCost {
		return nil, 0, false
	}

	// Reconstruct: walk (mask, vertex) pairs.
	type frame struct {
		mask int
		v    int32
	}
	var stack []frame
	stack = append(stack, frame{full, src})
	seen := map[int32]bool{} // dedupe arcs (shouldn't repeat, but be safe)
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pa := par[fr.mask][fr.v]
		switch pa.kind {
		case 0:
			// Base case: fr.v is the sink of a singleton mask.
		case 1:
			if !seen[pa.arc] {
				seen[pa.arc] = true
				arcs = append(arcs, pa.arc)
			}
			stack = append(stack, frame{fr.mask, c.g.Arcs[pa.arc].To})
		case 2:
			sub := int(pa.submask)
			stack = append(stack, frame{sub, fr.v}, frame{fr.mask ^ sub, fr.v})
		}
	}
	return arcs, dp[full][src], true
}

// newSteinerCtx builds the per-net context with ownership bans applied.
func newSteinerCtx(g *rgraph.Graph, m ownership, k int) *steinerCtx {
	banned := make([]bool, len(g.Arcs))
	for a := range g.Arcs {
		if !m.allowed(k, int32(a)) {
			banned[a] = true
		}
	}
	return &steinerCtx{g: g, net: k, banned: banned}
}

// ownership answers per-net arc availability; both the ILP model and the
// combinatorial solvers share this logic.
type ownership struct {
	g          *rgraph.Graph
	superOwner []int32
}

func newOwnership(g *rgraph.Graph) ownership {
	so := make([]int32, g.NumVerts-g.NumGrid)
	for i := range so {
		so[i] = -1
	}
	for k, s := range g.Source {
		so[s-int32(g.NumGrid)] = int32(k)
	}
	for k, sinks := range g.SinkVerts {
		for _, t := range sinks {
			so[t-int32(g.NumGrid)] = int32(k)
		}
	}
	return ownership{g: g, superOwner: so}
}

func (o ownership) allowed(k int, a int32) bool {
	arc := o.g.Arcs[a]
	for _, v := range []int32{arc.From, arc.To} {
		if o.g.IsGrid(v) {
			if owner := o.g.PinOwner[v]; owner >= 0 && owner != int32(k) {
				return false
			}
		} else if int(v)-o.g.NumGrid < len(o.superOwner) {
			if owner := o.superOwner[v-int32(o.g.NumGrid)]; owner >= 0 && owner != int32(k) {
				return false
			}
		}
	}
	return true
}
