package core

import (
	"math"

	"optrouter/internal/rgraph"
)

// steinerCtx is the per-net view of the routing graph used by the exact
// Steiner arborescence solver: arcs may be banned (by ownership rules or by
// branch-and-bound decisions) and arcs may carry extra penalties (used by
// the negotiated-congestion heuristic).
type steinerCtx struct {
	g       *rgraph.Graph
	net     int
	banned  []bool  // per arc
	penalty []int64 // per arc, added to base cost (nil = none)
	solves  int     // steinerTree invocations (observability)
	cells   int64   // finite DP cells across all solves (deterministic work)
	maxBase int64   // max base arc cost, bounds the bucket-queue span
	arena   *SteinerArena
}

func (c *steinerCtx) arcCost(a int32) int64 {
	cost := int64(c.g.Arcs[a].Cost)
	if c.penalty != nil {
		cost += c.penalty[a]
	}
	return cost
}

const infCost = math.MaxInt64 / 4

// maxBucketSpan bounds the Dial's-queue label range: solves whose seed spread
// plus worst-case path cost exceed it (Lagrangian rounds with large penalties)
// fall back to the pooled binary heap.
const maxBucketSpan = 1 << 16

// pqItem is a priority-queue entry for the heap-fallback Dijkstra.
type pqItem struct {
	v    int32
	dist int64
}

func heapPush(h []pqItem, it pqItem) []pqItem {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].dist <= h[i].dist {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func heapPop(h []pqItem) (pqItem, []pqItem) {
	it := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h[l].dist < h[s].dist {
			s = l
		}
		if r < n && h[r].dist < h[s].dist {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	return it, h
}

// parentAction reconstructs Dreyfus-Wagner decisions.
type parentAction struct {
	// kind 0: none (base terminal), 1: arc step (arc id), 2: subset split
	// (submask; the complement is implied).
	kind    uint8
	arc     int32
	submask uint16
}

// steinerTree computes a minimum-cost Steiner arborescence for net k from
// its supersource to all its supersinks, honoring bans and penalties.
// Returns the used arcs, the total (penalized) cost, and feasibility.
//
// The algorithm is the Dijkstra-accelerated Dreyfus-Wagner dynamic program:
// dp[S][v] = min cost of an arborescence rooted at v covering sink set S,
// built by subset merging at v followed by a Dijkstra relaxation over
// incoming arcs. Terminal counts in clips are small (the paper's nets are
// 2-4 pins), so the 3^t term is negligible and per-subset Dijkstra over the
// clip graph dominates.
//
// All working storage lives in the ctx's arena; the returned arc slice is
// arena-owned and valid only until the next solve on the same arena — callers
// that persist it must copy.
func steinerTree(c *steinerCtx) (arcs []int32, cost int64, ok bool) {
	c.solves++
	g := c.g
	src := g.Source[c.net]
	sinks := g.SinkVerts[c.net]
	t := len(sinks)
	if t == 0 {
		return nil, 0, true
	}
	if t > 16 {
		return nil, 0, false // out of scope for switchbox clips
	}
	nV := g.NumVerts
	full := (1 << t) - 1

	a := c.arena
	if a == nil {
		a = NewSteinerArena()
		c.arena = a
	}
	a.prepare(full+1, nV)
	dp, par, stamp := a.dp, a.par, a.stamp
	epoch := a.epoch

	for i, tv := range sinks {
		idx := (1<<i)*nV + int(tv)
		dp[idx] = 0
		par[idx] = parentAction{}
		stamp[idx] = epoch
		a.rowCnt[1<<i] = 1
	}

	// Per-mask Dijkstra label bound: seeds plus the longest simple path at
	// the maximum (penalized) arc cost. When that span fits, the monotone
	// bucket queue replaces the heap.
	maxArc := c.maxCost()

	for mask := 1; mask <= full; mask++ {
		base := mask * nV
		// Subset merge: dp[mask][v] = min over proper submasks containing
		// the lowest set bit (to halve enumeration). Rows with no finite
		// cell cannot contribute and are skipped outright.
		low := mask & (-mask)
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			if sub&low == 0 {
				continue
			}
			other := mask ^ sub
			if a.rowCnt[sub] == 0 || a.rowCnt[other] == 0 {
				continue
			}
			sb, ob := sub*nV, other*nV
			for v := 0; v < nV; v++ {
				if stamp[sb+v] != epoch || stamp[ob+v] != epoch {
					continue
				}
				s := dp[sb+v] + dp[ob+v]
				if stamp[base+v] != epoch {
					stamp[base+v] = epoch
					a.rowCnt[mask]++
					dp[base+v] = s
					par[base+v] = parentAction{kind: 2, submask: uint16(sub)}
				} else if s < dp[base+v] {
					dp[base+v] = s
					par[base+v] = parentAction{kind: 2, submask: uint16(sub)}
				}
			}
		}
		if a.rowCnt[mask] == 0 {
			continue // no seeds: relaxation cannot produce anything
		}
		// Dijkstra relaxation: propagate along reversed arcs (dp values
		// live at tree roots; an arc u->v lets a root at u reach the
		// subtree rooted at v paying cost(u->v)).
		minSeed, maxSeed := int64(infCost), int64(-infCost)
		for v := 0; v < nV; v++ {
			if stamp[base+v] == epoch {
				if d := dp[base+v]; d < minSeed {
					minSeed = d
				}
				if d := dp[base+v]; d > maxSeed {
					maxSeed = d
				}
			}
		}
		span := maxSeed - minSeed + maxArc*int64(nV) + 1
		if maxArc >= 0 && span <= maxBucketSpan {
			c.dijkstraBuckets(a, base, nV, minSeed, epoch)
		} else {
			c.dijkstraHeap(a, base, nV, epoch)
		}
		if mask == full {
			break
		}
	}

	// Deterministic work accounting: every finite (mask, vertex) DP cell the
	// solve produced, read off the per-mask finite counters the arena
	// already maintains.
	for mask := 1; mask <= full; mask++ {
		c.cells += int64(a.rowCnt[mask])
	}

	rootIdx := full*nV + int(src)
	if stamp[rootIdx] != epoch {
		return nil, 0, false
	}

	// Reconstruct: walk (mask, vertex) pairs, deduping arcs via per-arc
	// epoch stamps (shouldn't repeat, but be safe).
	a.prepareSeen(len(g.Arcs))
	a.arcBuf = a.arcBuf[:0]
	stack := a.stack[:0]
	stack = append(stack, dwFrame{full, src})
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pa := par[fr.mask*nV+int(fr.v)]
		switch pa.kind {
		case 0:
			// Base case: fr.v is the sink of a singleton mask.
		case 1:
			if a.seen[pa.arc] != a.seenEpoch {
				a.seen[pa.arc] = a.seenEpoch
				a.arcBuf = append(a.arcBuf, pa.arc)
			}
			stack = append(stack, dwFrame{fr.mask, g.Arcs[pa.arc].To})
		case 2:
			sub := int(pa.submask)
			stack = append(stack, dwFrame{sub, fr.v}, dwFrame{fr.mask ^ sub, fr.v})
		}
	}
	a.stack = stack
	return a.arcBuf, dp[rootIdx], true
}

// maxCost returns the maximum (penalized) arc cost, or -1 when a penalty is
// negative (the bucket queue requires nonnegative monotone labels; the heap
// path then reproduces the previous solver behavior exactly).
func (c *steinerCtx) maxCost() int64 {
	if c.maxBase == 0 {
		m := int64(0)
		for i := range c.g.Arcs {
			if cc := int64(c.g.Arcs[i].Cost); cc > m {
				m = cc
			}
		}
		c.maxBase = m
	}
	if c.penalty == nil {
		return c.maxBase
	}
	maxPen, minPen := int64(0), int64(0)
	for _, p := range c.penalty {
		if p > maxPen {
			maxPen = p
		}
		if p < minPen {
			minPen = p
		}
	}
	if minPen < 0 {
		return -1
	}
	return c.maxBase + maxPen
}

// dijkstraBuckets relaxes one dp row with a monotone bucket (Dial's) queue:
// labels are offset by the minimum seed, every push lands at or after the
// bucket being drained (arc costs are nonnegative), and stale entries are
// detected by comparing the entry's implied label to the current cell value.
func (c *steinerCtx) dijkstraBuckets(a *SteinerArena, base, nV int, off int64, epoch uint32) {
	g := c.g
	dp, par, stamp := a.dp, a.par, a.stamp
	remaining := 0
	for v := 0; v < nV; v++ {
		if stamp[base+v] != epoch {
			continue
		}
		b := int(dp[base+v] - off)
		bk := a.bucketFor(b)
		*bk = append(*bk, int32(v))
		remaining++
	}
	// Index a.buckets[b] afresh on every access: pushing a new maximum label
	// grows the bucket list, which may move it.
	for b := 0; remaining > 0; b++ {
		for len(a.buckets[b]) > 0 {
			bk := a.buckets[b]
			n := len(bk) - 1
			v := bk[n]
			a.buckets[b] = bk[:n]
			remaining--
			dist := off + int64(b)
			if dp[base+int(v)] != dist {
				continue // stale: relaxed to a smaller label after push
			}
			for _, aid := range g.In[v] {
				if c.banned[aid] {
					continue
				}
				u := int(g.Arcs[aid].From)
				nd := dist + c.arcCost(aid)
				if stamp[base+u] == epoch && nd >= dp[base+u] {
					continue
				}
				if stamp[base+u] != epoch {
					stamp[base+u] = epoch
					a.rowCnt[base/nV]++
				}
				dp[base+u] = nd
				par[base+u] = parentAction{kind: 1, arc: aid}
				nb := int(nd - off)
				nbk := a.bucketFor(nb)
				*nbk = append(*nbk, int32(u))
				remaining++
			}
		}
	}
}

// dijkstraHeap is the pooled binary-heap Dijkstra used when labels don't fit
// the bucket span (large Lagrangian penalties).
func (c *steinerCtx) dijkstraHeap(a *SteinerArena, base, nV int, epoch uint32) {
	g := c.g
	dp, par, stamp := a.dp, a.par, a.stamp
	h := a.heap[:0]
	for v := 0; v < nV; v++ {
		if stamp[base+v] == epoch {
			h = heapPush(h, pqItem{int32(v), dp[base+v]})
		}
	}
	for len(h) > 0 {
		var it pqItem
		it, h = heapPop(h)
		if it.dist > dp[base+int(it.v)] {
			continue
		}
		for _, aid := range g.In[it.v] {
			if c.banned[aid] {
				continue
			}
			u := int(g.Arcs[aid].From)
			nd := it.dist + c.arcCost(aid)
			if stamp[base+u] == epoch && nd >= dp[base+u] {
				continue
			}
			if stamp[base+u] != epoch {
				stamp[base+u] = epoch
				a.rowCnt[base/nV]++
			}
			dp[base+u] = nd
			par[base+u] = parentAction{kind: 1, arc: aid}
			h = heapPush(h, pqItem{int32(u), nd})
		}
	}
	a.heap = h
}

// newSteinerCtx builds the per-net context with ownership bans applied. The
// arena (may be nil) supplies the ban vector and all solve-time storage;
// sharing one arena across the sequential solves of a search amortizes it.
func newSteinerCtx(g *rgraph.Graph, m ownership, k int, arena *SteinerArena) *steinerCtx {
	var banned []bool
	if arena != nil {
		banned = arena.getBans(len(g.Arcs))
	} else {
		banned = make([]bool, len(g.Arcs))
	}
	for a := range g.Arcs {
		if !m.allowed(k, int32(a)) {
			banned[a] = true
		}
	}
	return &steinerCtx{g: g, net: k, banned: banned, arena: arena}
}

// ownership answers per-net arc availability; both the ILP model and the
// combinatorial solvers share this logic.
type ownership struct {
	g          *rgraph.Graph
	superOwner []int32
}

func newOwnership(g *rgraph.Graph) ownership {
	so := make([]int32, g.NumVerts-g.NumGrid)
	for i := range so {
		so[i] = -1
	}
	for k, s := range g.Source {
		so[s-int32(g.NumGrid)] = int32(k)
	}
	for k, sinks := range g.SinkVerts {
		for _, t := range sinks {
			so[t-int32(g.NumGrid)] = int32(k)
		}
	}
	return ownership{g: g, superOwner: so}
}

func (o ownership) allowed(k int, a int32) bool {
	arc := o.g.Arcs[a]
	return o.vertAllowed(k, arc.From) && o.vertAllowed(k, arc.To)
}

// vertAllowed checks one endpoint; allowed unrolls it over From/To instead of
// ranging a fresh slice literal (this sits in the innermost ban-construction
// loop, once per arc per net per rule).
func (o ownership) vertAllowed(k int, v int32) bool {
	if o.g.IsGrid(v) {
		if owner := o.g.PinOwner[v]; owner >= 0 && owner != int32(k) {
			return false
		}
	} else if int(v)-o.g.NumGrid < len(o.superOwner) {
		if owner := o.superOwner[v-int32(o.g.NumGrid)]; owner >= 0 && owner != int32(k) {
			return false
		}
	}
	return true
}
