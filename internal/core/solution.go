// Package core implements OptRouter: cost-optimal, design-rule-correct
// switchbox detailed routing, reproducing the DAC 2015 paper "Evaluation of
// BEOL Design Rule Impacts Using An Optimal ILP-based Detailed Router".
//
// Two provably optimal solvers are provided:
//
//   - SolveILP emits the paper's multi-commodity-flow integer linear program
//     (constraints (1)-(12)) onto the pure-Go MILP engine in package ilp,
//     replacing the paper's CPLEX.
//   - SolveBnB is a conflict-driven combinatorial branch-and-bound that
//     computes per-net minimum Steiner arborescences for admissible lower
//     bounds and branches on (net, arc) forbiddances named by realized
//     conflicts. It reaches the same optima much faster and powers the large
//     experiment sweeps.
//
// A fast heuristic router (SolveHeuristic) stands in for the commercial
// router in the paper's validation study.
package core

import (
	"fmt"
	"time"

	"optrouter/internal/rgraph"
)

// Solution is a routing result for one clip under one rule configuration.
type Solution struct {
	// Feasible is false when the instance is proven unroutable.
	Feasible bool
	// Proven is true when the result carries an optimality (or
	// infeasibility) proof; heuristic results leave it false.
	Proven bool

	// Cost is the routing cost: wirelength + 4 x #vias by default
	// (configured through rgraph arc costs).
	Cost int
	// Wirelength counts used wire arcs (track steps).
	Wirelength int
	// Vias counts used via sites.
	Vias int

	// NetArcs[k] lists the directed arc ids used by net k.
	NetArcs [][]int32

	Runtime time.Duration

	// Solver statistics (meaning depends on the solver).
	Nodes   int // branch-and-bound nodes
	LPIters int // simplex iterations (ILP solver only)

	// Stats carries the full per-solve telemetry (see SolveStats); always
	// populated by the exact solvers, partially by the heuristic.
	Stats SolveStats
}

// SolveStats is the per-solve telemetry shared by both exact solvers.
// Fields not applicable to a solver are left zero (e.g. LPSolves for the
// combinatorial BnB, SteinerSolves for the MILP path).
type SolveStats struct {
	Nodes      int // search nodes explored
	Incumbents int // incumbent updates (including the heuristic seed)

	// CDC-BnB specific.
	BansGenerated    int           // (net, arc) forbiddances pushed to children
	SteinerSolves    int           // exact Steiner lower-bound computations
	SteinerCacheHits int           // per-net route cache hits avoided recomputation
	DRCChecks        int           // design-rule evaluations of candidate routings
	DRCTime          time.Duration // wall time inside the DRC
	LagrangianRounds int           // dual-bound strengthening rounds
	Dives            int           // primal dive-repair attempts

	// MILP path specific.
	LPSolves int           // LP relaxations solved
	LPIters  int           // total simplex iterations
	LPTime   time.Duration // wall time inside the LP subsolver

	Elapsed time.Duration // total wall time of the solve
	// Termination says why the solve stopped: "optimal", "infeasible",
	// "time-limit", "node-limit", or an LP failure reason.
	Termination string
}

// summarize fills cost/wirelength/via counters from NetArcs.
func summarize(g *rgraph.Graph, sol *Solution) {
	sol.Cost = 0
	sol.Wirelength = 0
	usedSites := map[int32]bool{}
	for _, arcs := range sol.NetArcs {
		for _, aid := range arcs {
			a := g.Arcs[aid]
			sol.Cost += int(a.Cost)
			switch a.Kind {
			case rgraph.Wire:
				sol.Wirelength++
			case rgraph.Via, rgraph.ViaShapeIn, rgraph.ViaShapeOut:
				if a.Site >= 0 {
					usedSites[a.Site] = true
				}
			}
		}
	}
	sol.Vias = len(usedSites)
}

// UsedSites returns the set of via sites occupied by the solution.
func (s *Solution) UsedSites(g *rgraph.Graph) map[int32]bool {
	used := map[int32]bool{}
	for _, arcs := range s.NetArcs {
		for _, aid := range arcs {
			if st := g.Arcs[aid].Site; st >= 0 {
				used[st] = true
			}
		}
	}
	return used
}

// String summarizes the solution.
func (s *Solution) String() string {
	if !s.Feasible {
		return "infeasible"
	}
	return fmt.Sprintf("cost=%d wl=%d vias=%d (%.0fms)", s.Cost, s.Wirelength, s.Vias,
		float64(s.Runtime)/float64(time.Millisecond))
}
