// Package core implements OptRouter: cost-optimal, design-rule-correct
// switchbox detailed routing, reproducing the DAC 2015 paper "Evaluation of
// BEOL Design Rule Impacts Using An Optimal ILP-based Detailed Router".
//
// Two provably optimal solvers are provided:
//
//   - SolveILP emits the paper's multi-commodity-flow integer linear program
//     (constraints (1)-(12)) onto the pure-Go MILP engine in package ilp,
//     replacing the paper's CPLEX.
//   - SolveBnB is a conflict-driven combinatorial branch-and-bound that
//     computes per-net minimum Steiner arborescences for admissible lower
//     bounds and branches on (net, arc) forbiddances named by realized
//     conflicts. It reaches the same optima much faster and powers the large
//     experiment sweeps.
//
// A fast heuristic router (SolveHeuristic) stands in for the commercial
// router in the paper's validation study.
package core

import (
	"fmt"
	"time"

	"optrouter/internal/obs"
	"optrouter/internal/rgraph"
)

// Solution is a routing result for one clip under one rule configuration.
type Solution struct {
	// Feasible is false when the instance is proven unroutable.
	Feasible bool
	// Proven is true when the result carries an optimality (or
	// infeasibility) proof; heuristic results leave it false.
	Proven bool

	// Cost is the routing cost: wirelength + 4 x #vias by default
	// (configured through rgraph arc costs).
	Cost int
	// Wirelength counts used wire arcs (track steps).
	Wirelength int
	// Vias counts used via sites.
	Vias int

	// NetArcs[k] lists the directed arc ids used by net k.
	NetArcs [][]int32

	Runtime time.Duration

	// Solver statistics (meaning depends on the solver).
	Nodes   int // branch-and-bound nodes
	LPIters int // simplex iterations (ILP solver only)

	// Stats carries the full per-solve telemetry (see SolveStats); always
	// populated by the exact solvers, partially by the heuristic.
	Stats SolveStats
}

// BoundSample is one point of a solve's convergence trace: the proven lower
// bound and best incumbent cost at a moment of the search. Samples are taken
// at the root, at every incumbent update and at termination (capped at 1024
// per solve) and dump as JSONL through report.ConvergenceWriter.
type BoundSample struct {
	ElapsedMS float64 `json:"elapsed_ms"` // since the start of the solve
	Nodes     int     `json:"nodes"`      // nodes explored at the sample
	Depth     int     `json:"depth"`      // depth of the node being processed
	Open      int     `json:"open"`       // open nodes at the sample
	Bound     int64   `json:"bound"`      // proven lower bound (-1 before root)
	Incumbent int64   `json:"incumbent"`  // best feasible cost (-1 if none)
}

// SolveStats is the per-solve telemetry shared by both exact solvers.
// Fields not applicable to a solver are left zero (e.g. LPSolves for the
// combinatorial BnB, SteinerSolves for the MILP path).
type SolveStats struct {
	Nodes      int // search nodes explored
	MaxDepth   int // deepest search node processed
	Incumbents int // incumbent updates (including the heuristic seed)

	// CDC-BnB specific.
	BansGenerated    int           // (net, arc) forbiddances pushed to children
	SteinerSolves    int           // exact Steiner lower-bound computations
	SteinerCells     int64         // finite Steiner DP cells visited (deterministic work)
	SteinerCacheHits int           // per-net route cache hits avoided recomputation
	DRCChecks        int           // design-rule evaluations of candidate routings
	DRCTime          time.Duration // wall time inside the DRC
	LagrangianRounds int           // dual-bound strengthening rounds
	Dives            int           // primal dive-repair attempts

	// MILP path specific.
	LPSolves     int           // LP relaxations solved
	LPIters      int           // total simplex iterations
	LPWarmStarts int           // node LPs reoptimized from the parent basis
	LPRefactors  int           // basis refactorizations across all node LPs
	LPEtaPivots  int           // basis exchanges absorbed by eta updates
	LPFTRANNnz   int64         // sparse FTRAN result nonzeros (deterministic work)
	LPBTRANNnz   int64         // sparse BTRAN result nonzeros (deterministic work)
	LPTime       time.Duration // wall time inside the LP subsolver
	// Pricing and presolve telemetry of the LP engine (zero for the
	// combinatorial BnB and for Dantzig/no-presolve configurations).
	LPCandidateHits  int // pricing rounds served from the candidate list
	LPRefResets      int // devex/steepest reference-framework resets
	LPDualBoundFlips int // bound-flip ratio-test flips across warm starts
	PresolveRows     int // rows removed by structural LP presolve
	PresolveCols     int // columns removed by structural LP presolve
	// Refactorization triggers across all node LPs: update-count budget,
	// update-storage fill budget, tiny mid-iteration pivot, rejected
	// FT/PFI update on spike-pivot quality.
	LPRefactorEtaLen         int
	LPRefactorFill           int
	LPRefactorPivotQuality   int
	LPRefactorUpdateRejected int

	// Model dimensions of the MILP path's LP relaxation (zero for the
	// combinatorial BnB): constraint rows, variable columns, and structural
	// matrix nonzeros. Benchmarks report these so speedups can be correlated
	// with LP size.
	ModelRows int
	ModelCols int
	ModelNNZ  int

	// Parallel-search and portfolio telemetry.
	Winner string // engine that produced the returned result: "bnb", "ilp", "" (serial solves)
	Par    int    // worker count of the parallel tree search (0 = classic serial engine)
	// NodesPerWorker[w] counts nodes evaluated by parallel worker w. The
	// split is scheduling-dependent (not deterministic across runs); the sum
	// equals Nodes.
	NodesPerWorker []int
	// IncumbentExchanges counts incumbent offers accepted by the shared
	// portfolio exchange (0 outside portfolio mode).
	IncumbentExchanges int
	// Steals counts scheduler work-stealing events during the parallel tree
	// search (scheduling-dependent).
	Steals int

	Elapsed time.Duration // total wall time of the solve
	// Termination says why the solve stopped: "optimal", "infeasible",
	// "time-limit", "node-limit", "cancelled", "decided" (the portfolio
	// exchange settled the race), or an LP failure reason.
	Termination string

	// Phases attributes the solve's wall time to solver-internal phases.
	// CDC-BnB: seed, steiner, drc, lagrangian, dive, branch, search.
	// MILP: setup, presolve, root_lp, node_lp, heuristic, branch, search.
	// The phases partition the solve, so Phases.Total() ~= Elapsed.
	Phases obs.Breakdown
	// LPPhases is the aggregated simplex-internal breakdown (pricing, ratio
	// test, pivot, refactorize) of the MILP path; empty unless the solve ran
	// with lp.Options.CollectPhases.
	LPPhases obs.Breakdown
	// BoundTrace is the incumbent/bound convergence trace of the search.
	BoundTrace []BoundSample
}

// maxTraceSamples caps BoundTrace per solve (the last entry is always the
// terminal state).
const maxTraceSamples = 1024

// msSince returns the time since t in fractional milliseconds, the unit of
// BoundSample.ElapsedMS.
func msSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1000.0
}

// summarize fills cost/wirelength/via counters from NetArcs.
func summarize(g *rgraph.Graph, sol *Solution) {
	sol.Cost = 0
	sol.Wirelength = 0
	usedSites := map[int32]bool{}
	for _, arcs := range sol.NetArcs {
		for _, aid := range arcs {
			a := g.Arcs[aid]
			sol.Cost += int(a.Cost)
			switch a.Kind {
			case rgraph.Wire:
				sol.Wirelength++
			case rgraph.Via, rgraph.ViaShapeIn, rgraph.ViaShapeOut:
				if a.Site >= 0 {
					usedSites[a.Site] = true
				}
			}
		}
	}
	sol.Vias = len(usedSites)
}

// UsedSites returns the set of via sites occupied by the solution.
func (s *Solution) UsedSites(g *rgraph.Graph) map[int32]bool {
	used := map[int32]bool{}
	for _, arcs := range s.NetArcs {
		for _, aid := range arcs {
			if st := g.Arcs[aid].Site; st >= 0 {
				used[st] = true
			}
		}
	}
	return used
}

// String summarizes the solution.
func (s *Solution) String() string {
	if !s.Feasible {
		return "infeasible"
	}
	return fmt.Sprintf("cost=%d wl=%d vias=%d (%.0fms)", s.Cost, s.Wirelength, s.Vias,
		float64(s.Runtime)/float64(time.Millisecond))
}
