package core

import (
	"testing"

	"optrouter/internal/clip"
	"optrouter/internal/rgraph"
)

// As the via weight grows, the optimal solution's via count is
// non-increasing (a classic exchange argument: if a heavier weight made the
// optimum use more vias, swapping solutions would improve one of the two
// optima). This exercises the paper's "alternative routing cost definitions
// with different weighting of via count".
func TestViaWeightMonotonicity(t *testing.T) {
	for seed := int64(80); seed < 86; seed++ {
		opt := clip.DefaultSynth(seed)
		opt.NX, opt.NY, opt.NZ = 5, 6, 4
		opt.NumNets = 3
		c := clip.Synthesize(opt)
		prevVias := -1
		prevWeight := 0
		for _, w := range []int{1, 2, 4, 8} {
			g, err := rgraph.Build(c, rgraph.Options{ViaCost: w})
			if err != nil {
				t.Fatal(err)
			}
			sol, err := SolveBnB(g, BnBOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !sol.Feasible {
				break // heavier weights cannot change feasibility; done
			}
			if prevVias >= 0 && sol.Vias > prevVias {
				t.Fatalf("seed %d: vias rose from %d (w=%d) to %d (w=%d)",
					seed, prevVias, prevWeight, sol.Vias, w)
			}
			prevVias = sol.Vias
			prevWeight = w
		}
	}
}

// Feasibility must not depend on the cost weights at all.
func TestViaWeightFeasibilityInvariant(t *testing.T) {
	for seed := int64(90); seed < 94; seed++ {
		opt := clip.DefaultSynth(seed)
		opt.NX, opt.NY, opt.NZ = 4, 5, 3
		opt.NumNets = 3
		c := clip.Synthesize(opt)
		var feas []bool
		for _, w := range []int{1, 4, 10} {
			g, err := rgraph.Build(c, rgraph.Options{ViaCost: w})
			if err != nil {
				t.Fatal(err)
			}
			sol, err := SolveBnB(g, BnBOptions{})
			if err != nil {
				t.Fatal(err)
			}
			feas = append(feas, sol.Feasible)
		}
		for i := 1; i < len(feas); i++ {
			if feas[i] != feas[0] {
				t.Fatalf("seed %d: feasibility changed with via weight: %v", seed, feas)
			}
		}
	}
}
