package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"optrouter/internal/ilp"
	"optrouter/internal/obs"
	"optrouter/internal/rgraph"
	"optrouter/internal/xchg"
)

// SolvePortfolio races the two exact engines — the conflict-driven
// combinatorial branch-and-bound (SolveBnB, optionally parallel via
// BnBOptions.Par) and the MILP branch-and-bound (SolveILP) — on the same
// instance, connected through a shared lock-free exchange (package xchg):
//
//   - Incumbents flow both ways: whichever engine finds a cheaper routing
//     publishes its cost, and the other engine immediately prunes against it.
//   - Lower bounds flow both ways: the MILP root relaxation and the BnB's
//     best-first queue minimum both raise the shared bound.
//   - The race is decided the moment the shared bound reaches the shared
//     incumbent — a joint optimality proof no single engine may have
//     completed on its own — or when either engine finishes its tree.
//
// The composition stays exact because cross-pruning is one-sided-proof-
// preserving: an engine that completes its tree while pruning against a
// foreign incumbent has proven that no solution cheaper than that incumbent
// exists, which together with the incumbent itself is an optimality
// certificate. The loser is cancelled through its context as soon as the
// winner's proof lands.
func SolvePortfolio(g *rgraph.Graph, opt BnBOptions) (*Solution, error) {
	start := time.Now()
	ex := xchg.New()
	span := opt.Tracer.Start("portfolio.solve",
		obs.A("clip", g.Clip.Name),
		obs.A("nets", len(g.Clip.Nets)),
		obs.A("par", opt.Par))

	base := opt.Ctx
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()

	type engineResult struct {
		name string
		sol  *Solution
		err  error
	}
	results := make(chan engineResult, 2)

	bnbOpt := opt
	bnbOpt.Ctx = ctx
	bnbOpt.Exchange = ex
	go func() {
		sol, err := SolveBnB(g, bnbOpt)
		results <- engineResult{"bnb", sol, err}
	}()
	// Yield before launching the MILP engine. When GOMAXPROCS saturates, the
	// most recently readied goroutine runs next, so without the yield the MILP
	// engine would monopolize the processor for a full preemption quantum
	// (~10ms) before the BnB — which often proves small instances outright in
	// well under that — ran at all. The yield hands the processor to the BnB
	// first; on an unsaturated scheduler it is a no-op.
	runtime.Gosched()

	ilpOpt := ilp.Options{
		TimeLimit: opt.TimeLimit,
		Ctx:       ctx,
		LP:        opt.LP,
		Tracer:    opt.Tracer,
		Flight:    opt.Flight,
		Exchange:  ex,
	}
	go func() {
		sol, err := SolveILP(g, ilpOpt)
		results <- engineResult{"ilp", sol, err}
	}()

	// Wait for both engines; cancel the loser the moment a proof lands. Both
	// goroutines always run to completion, so no work outlives the call.
	proved := "" // engine whose result first carried a proof
	var bnbRes, ilpRes engineResult
	for i := 0; i < 2; i++ {
		r := <-results
		if r.name == "bnb" {
			bnbRes = r
		} else {
			ilpRes = r
		}
		if proved == "" && r.err == nil && r.sol != nil && r.sol.Proven {
			proved = r.name
			span.Event("proof", obs.A("engine", r.name), obs.A("elapsed_ms", float64(time.Since(start).Microseconds())/1000.0))
			cancel()
		}
	}

	finish := func(sol *Solution, winner string, err error) (*Solution, error) {
		if err != nil {
			span.SetAttr("error", err.Error())
			span.End()
			return nil, err
		}
		sol.Runtime = time.Since(start)
		sol.Stats.Winner = winner
		sol.Stats.IncumbentExchanges = int(ex.Accepted())
		sol.Stats.Elapsed = sol.Runtime
		span.SetAttr("winner", winner)
		span.SetAttr("prover", proved)
		span.SetAttr("feasible", sol.Feasible)
		span.SetAttr("proven", sol.Proven)
		span.SetAttr("cost", sol.Cost)
		span.SetAttr("exchange_accepted", ex.Accepted())
		span.SetAttr("exchange_offers", ex.Offers())
		span.SetAttr("decided", ex.Decided())
		span.End()
		return sol, nil
	}

	inc, haveInc := ex.Incumbent()
	if proved != "" {
		if haveInc {
			// Jointly proven optimum: the exchange incumbent. The engine whose
			// local best equals it holds the routes (every exchange incumbent
			// is some engine's retained local best).
			for _, r := range []engineResult{bnbRes, ilpRes} {
				if r.err == nil && r.sol != nil && r.sol.Feasible && int64(r.sol.Cost) == inc {
					r.sol.Proven = true
					return finish(r.sol, r.name, nil)
				}
			}
			// Unreachable in a correct exchange; fail loudly rather than
			// return a silently unproven result.
			return finish(nil, "", fmt.Errorf("core: portfolio proof at cost %d but no engine holds it", inc))
		}
		// A completed proof with no incumbent anywhere: proven infeasible.
		for _, r := range []engineResult{bnbRes, ilpRes} {
			if r.name == proved {
				return finish(r.sol, r.name, nil)
			}
		}
	}

	// No proof: both engines hit limits, were cancelled from outside, or
	// errored. Return the best feasible result unproven, tolerating a single
	// engine's failure.
	var best *Solution
	winner := ""
	for _, r := range []engineResult{bnbRes, ilpRes} {
		if r.err != nil || r.sol == nil || !r.sol.Feasible {
			continue
		}
		if best == nil || r.sol.Cost < best.Cost {
			best = r.sol
			winner = r.name
		}
	}
	if best != nil {
		best.Proven = false
		return finish(best, winner, nil)
	}
	if bnbRes.err != nil && ilpRes.err != nil {
		return finish(nil, "", fmt.Errorf("core: portfolio: both engines failed: bnb: %v; ilp: %v", bnbRes.err, ilpRes.err))
	}
	for _, r := range []engineResult{bnbRes, ilpRes} {
		if r.err == nil && r.sol != nil {
			return finish(r.sol, r.name, nil)
		}
	}
	return finish(nil, "", fmt.Errorf("core: portfolio: no engine produced a result"))
}
