package core

import (
	"fmt"
	"testing"
	"time"

	"optrouter/internal/clip"
	"optrouter/internal/ilp"
	"optrouter/internal/lp"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

// checkPhaseAttribution is the acceptance check for the phase clocks: each
// solve's breakdown must partition its wall time, so the phase sum has to land
// within 10% of Stats.Elapsed (plus a small absolute slack for sub-millisecond
// solves where scheduler noise dominates).
func checkPhaseAttribution(t *testing.T, label string, s SolveStats) {
	t.Helper()
	if len(s.Phases) == 0 {
		t.Fatalf("%s: no phase breakdown recorded", label)
	}
	total := s.Phases.Total()
	diff := s.Elapsed - total
	if diff < 0 {
		diff = -diff
	}
	slack := s.Elapsed/10 + 2*time.Millisecond
	if diff > slack {
		t.Errorf("%s: phase sum %v vs elapsed %v (diff %v > slack %v)\nbreakdown: %v",
			label, total, s.Elapsed, diff, slack, s.Phases.MS())
	}
}

// TestPhaseAttributionSums runs both exact solvers over the differential-test
// style corpus and asserts the per-phase wall-time attribution sums to the
// measured solve time, and that depth/trace telemetry is populated.
func TestPhaseAttributionSums(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	rules := []string{"RULE1", "RULE7", "RULE8"}

	for _, seed := range seeds {
		opt := clip.DefaultSynth(seed)
		opt.NX, opt.NY, opt.NZ = 4, 5, 3
		opt.NumNets = 3
		opt.MaxSinks = 2
		c := clip.Synthesize(opt)
		c.Tech = "N28-12T"

		for _, rn := range rules {
			rule, ok := tech.RuleByName(rn)
			if !ok {
				t.Fatalf("unknown rule %s", rn)
			}
			t.Run(fmt.Sprintf("seed%d-%s", seed, rn), func(t *testing.T) {
				g, err := rgraph.Build(c, rgraph.Options{Rule: rule})
				if err != nil {
					t.Fatal(err)
				}
				bnb, err := SolveBnB(g, BnBOptions{TimeLimit: 30 * time.Second})
				if err != nil {
					t.Fatal(err)
				}
				checkPhaseAttribution(t, "bnb", bnb.Stats)
				if len(bnb.Stats.BoundTrace) == 0 {
					t.Error("bnb: empty bound trace")
				} else {
					last := bnb.Stats.BoundTrace[len(bnb.Stats.BoundTrace)-1]
					if bnb.Feasible && last.Incumbent != int64(bnb.Cost) {
						t.Errorf("bnb: terminal trace incumbent %d != cost %d", last.Incumbent, bnb.Cost)
					}
				}

				milp, err := SolveILP(g, ilp.Options{
					TimeLimit: 60 * time.Second,
					LP:        lp.Options{CollectPhases: true},
				})
				if err != nil {
					t.Fatal(err)
				}
				checkPhaseAttribution(t, "milp", milp.Stats)
				if len(milp.Stats.BoundTrace) == 0 {
					t.Error("milp: empty bound trace")
				}
				if milp.Stats.LPIters > 0 && len(milp.Stats.LPPhases) == 0 {
					t.Error("milp: CollectPhases set but no simplex breakdown")
				}
				if milp.Stats.Nodes > 1 && milp.Stats.MaxDepth == 0 {
					t.Errorf("milp: %d nodes but MaxDepth 0", milp.Stats.Nodes)
				}
			})
		}
	}
}
