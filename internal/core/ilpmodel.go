package core

import (
	"fmt"
	"math"
	"time"

	"optrouter/internal/ilp"
	"optrouter/internal/lp"
	"optrouter/internal/obs"
	"optrouter/internal/rgraph"
)

// ILPModel is the paper's Section 3 integer linear program for one routing
// graph: multi-commodity flow with Steiner (multi-pin) nets, arc and vertex
// capacities, via adjacency restrictions, via-shape blocking and SADP
// end-of-line rules.
type ILPModel struct {
	G     *rgraph.Graph
	Model *ilp.Model

	// EVar[k][a] is the variable index of e^k_a, or -1 when arc a is not
	// available to net k.
	EVar [][]int32
	// FVar[k][a] is the flow variable for multi-pin nets (else -1; for
	// two-pin nets e doubles as the unit flow).
	FVar [][]int32

	// superOwner[v] maps non-grid vertices to their owning net (or -1).
	superOwner []int32

	// Auxiliary-variable definitions, recorded so that EncodeSolution can
	// derive their values when warm-starting from a heuristic route.
	products []prodDef
	ors      []orDef
	siteUs   []siteUDef

	// Counts for the Section 4 model-size analysis.
	NumEVars, NumFVars, NumPVars, NumProductVars, NumSiteVars int
}

// prodDef records q = a * b for binaries.
type prodDef struct{ q, a, b int }

// orDef records p = OR(qs).
type orDef struct {
	p  int
	qs []int
}

// siteUDef records u = OR(es): site-usage indicator over arc variables.
type siteUDef struct {
	u  int
	es []int
}

// Allowed reports whether net k may use arc a: the arc must not touch
// another net's pin access points or another net's virtual terminals.
func (m *ILPModel) Allowed(k int, a int32) bool {
	arc := m.G.Arcs[a]
	for _, v := range []int32{arc.From, arc.To} {
		if m.G.IsGrid(v) {
			if owner := m.G.PinOwner[v]; owner >= 0 && owner != int32(k) {
				return false
			}
		} else if owner := m.superOwner[v-int32(m.G.NumGrid)]; owner >= 0 && owner != int32(k) {
			return false
		}
	}
	return true
}

// BuildILP assembles the complete ILP for the routing graph.
func BuildILP(g *rgraph.Graph) *ILPModel {
	nets := g.Clip.Nets
	m := &ILPModel{G: g, Model: ilp.NewModel()}

	// Ownership of non-grid vertices: -1 for via representative vertices,
	// net index for super terminals.
	m.superOwner = make([]int32, g.NumVerts-g.NumGrid)
	for i := range m.superOwner {
		m.superOwner[i] = -1
	}
	for k, s := range g.Source {
		m.superOwner[s-int32(g.NumGrid)] = int32(k)
	}
	for k, sinks := range g.SinkVerts {
		for _, t := range sinks {
			m.superOwner[t-int32(g.NumGrid)] = int32(k)
		}
	}

	// Variables: e (binary) and f (continuous, multi-pin nets only).
	m.EVar = make([][]int32, len(nets))
	m.FVar = make([][]int32, len(nets))
	for k := range nets {
		m.EVar[k] = make([]int32, len(g.Arcs))
		m.FVar[k] = make([]int32, len(g.Arcs))
		nT := nets[k].NumSinks()
		for a := range g.Arcs {
			m.EVar[k][a] = -1
			m.FVar[k][a] = -1
			if !m.Allowed(k, int32(a)) {
				continue
			}
			e := m.Model.AddBinary(float64(g.Arcs[a].Cost))
			m.EVar[k][a] = int32(e)
			m.NumEVars++
			if nT > 1 {
				f := m.Model.AddContinuous(0, float64(nT), 0)
				m.FVar[k][a] = int32(f)
				m.NumFVars++
			}
		}
	}

	m.addCapacityConstraints()
	m.addFlowConstraints()
	m.addVertexCapacity()
	m.addViaShapeConstraints()
	m.addViaAdjacency()
	m.addSADPConstraints()
	return m
}

// flowVar returns the variable carrying flow for net k on arc a (f for
// multi-pin nets, e for two-pin nets), or -1.
func (m *ILPModel) flowVar(k int, a int32) int32 {
	if f := m.FVar[k][a]; f >= 0 {
		return f
	}
	return m.EVar[k][a]
}

// addCapacityConstraints emits constraint (1): each undirected arc resource
// is used by at most one net (and one direction).
func (m *ILPModel) addCapacityConstraints() {
	g := m.G
	for a := 0; a < len(g.Arcs); a++ {
		b := g.Pair[a]
		if int32(a) > b {
			continue // one row per unordered pair
		}
		if g.Arcs[a].Kind == rgraph.Virtual {
			continue // single-net by construction
		}
		var cs []lp.Coef
		for k := range m.EVar {
			if e := m.EVar[k][a]; e >= 0 {
				cs = append(cs, lp.Coef{Var: int(e), Val: 1})
			}
			if e := m.EVar[k][b]; e >= 0 {
				cs = append(cs, lp.Coef{Var: int(e), Val: 1})
			}
		}
		if len(cs) > 1 {
			m.Model.AddConstraint(cs, lp.LE, 1)
		}
	}
}

// addFlowConstraints emits constraints (2)-(4): e/f coupling and flow
// conservation with supersource supply |T| and one unit per supersink.
func (m *ILPModel) addFlowConstraints() {
	g := m.G
	for k := range m.EVar {
		nT := g.Clip.Nets[k].NumSinks()
		// e/f coupling for multi-pin nets.
		if nT > 1 {
			for a := range g.Arcs {
				e, f := m.EVar[k][a], m.FVar[k][a]
				if e < 0 {
					continue
				}
				// (2) e >= f/|T|  <=>  |T| e - f >= 0
				m.Model.AddConstraint([]lp.Coef{{Var: int(e), Val: float64(nT)}, {Var: int(f), Val: -1}}, lp.GE, 0)
				// (3) e <= f
				m.Model.AddConstraint([]lp.Coef{{Var: int(e), Val: 1}, {Var: int(f), Val: -1}}, lp.LE, 0)
			}
		}
		// (4) conservation at every vertex the net can touch.
		sinkSet := map[int32]bool{}
		for _, t := range g.SinkVerts[k] {
			sinkSet[t] = true
		}
		for v := int32(0); v < int32(g.NumVerts); v++ {
			var cs []lp.Coef
			for _, aid := range g.Out[v] {
				if fv := m.flowVar(k, aid); fv >= 0 {
					cs = append(cs, lp.Coef{Var: int(fv), Val: 1})
				}
			}
			for _, aid := range g.In[v] {
				if fv := m.flowVar(k, aid); fv >= 0 {
					cs = append(cs, lp.Coef{Var: int(fv), Val: -1})
				}
			}
			if len(cs) == 0 {
				continue
			}
			rhs := 0.0
			switch {
			case v == g.Source[k]:
				rhs = float64(nT)
			case sinkSet[v]:
				rhs = -1
			}
			m.Model.AddConstraint(cs, lp.EQ, rhs)
		}
	}
}

// addVertexCapacity keeps grid vertices net-disjoint: at most one unit of
// costed "entering" arc usage per vertex across all nets. Optimal routings
// need at most one costed entry per vertex (a second one can always be
// rerouted through the first at no extra cost), so this does not exclude
// any optimum, while it forbids two nets sharing a metal point (e.g. a via
// landing on a wire of another net). Zero-cost entries — virtual terminal
// arcs and via-shape fan-out — are excluded; inter-net sharing through a
// via shape is covered by the footprint-blocking rows of constraint (5).
func (m *ILPModel) addVertexCapacity() {
	g := m.G
	for v := int32(0); v < int32(g.NumGrid); v++ {
		var cs []lp.Coef
		seen := map[int]bool{}
		for k := range m.EVar {
			for _, aid := range g.In[v] {
				kind := g.Arcs[aid].Kind
				if kind == rgraph.Virtual || kind == rgraph.ViaShapeOut {
					continue
				}
				if e := m.EVar[k][aid]; e >= 0 && !seen[int(e)] {
					seen[int(e)] = true
					cs = append(cs, lp.Coef{Var: int(e), Val: 1})
				}
			}
		}
		if len(cs) > 1 {
			m.Model.AddConstraint(cs, lp.LE, 1)
		}
	}
}

// addViaShapeConstraints emits constraint (5) for shaped vias: a site
// usage indicator per (site, net), exclusivity of the representative vertex,
// and blocking of footprint vertices against other nets.
func (m *ILPModel) addViaShapeConstraints() {
	g := m.G
	for si := range g.Sites {
		s := &g.Sites[si]
		if s.Rep < 0 {
			continue // 1x1 vias need no extra rows
		}
		// u[s][k] >= e for each of net k's site arcs; sum_k u <= 1.
		uVars := make([]int32, len(m.EVar))
		var sumU []lp.Coef
		for k := range m.EVar {
			uVars[k] = -1
			var any bool
			for _, aid := range s.Arcs {
				if m.EVar[k][aid] >= 0 {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			u := m.Model.AddBinary(0)
			m.NumSiteVars++
			uVars[k] = int32(u)
			sumU = append(sumU, lp.Coef{Var: u, Val: 1})
			ud := siteUDef{u: u}
			for _, aid := range s.Arcs {
				if e := m.EVar[k][aid]; e >= 0 {
					m.Model.AddConstraint([]lp.Coef{{Var: u, Val: 1}, {Var: int(e), Val: -1}}, lp.GE, 0)
					ud.es = append(ud.es, int(e))
				}
			}
			m.siteUs = append(m.siteUs, ud)
		}
		if len(sumU) > 1 {
			m.Model.AddConstraint(sumU, lp.LE, 1)
		}
		// Footprint blocking: if net k uses the site, no other net may
		// enter a footprint vertex through non-site arcs.
		siteArc := map[int32]bool{}
		for _, aid := range s.Arcs {
			siteArc[aid] = true
		}
		for _, fv := range s.Footprint {
			for k := range m.EVar {
				if uVars[k] < 0 {
					continue
				}
				for k2 := range m.EVar {
					if k2 == k {
						continue
					}
					var cs []lp.Coef
					for _, aid := range g.In[fv] {
						if siteArc[aid] {
							continue
						}
						if e := m.EVar[k2][aid]; e >= 0 {
							cs = append(cs, lp.Coef{Var: int(e), Val: 1})
						}
					}
					if len(cs) == 0 {
						continue
					}
					cs = append(cs, lp.Coef{Var: int(uVars[k]), Val: 1})
					m.Model.AddConstraint(cs, lp.LE, 1)
				}
			}
		}
	}
}

// siteUsage returns coefficients whose sum is 1 when the via site is in use.
func (m *ILPModel) siteUsage(si int) []lp.Coef {
	g := m.G
	s := &g.Sites[si]
	var cs []lp.Coef
	for k := range m.EVar {
		for _, aid := range s.Arcs {
			// For 1x1 sites both directions count; for shaped sites count
			// only arcs into the representative (the costed direction), so a
			// passing net contributes at least 1 and at most a few units.
			a := g.Arcs[aid]
			if s.Rep >= 0 && a.Kind != rgraph.ViaShapeIn {
				continue
			}
			if e := m.EVar[k][aid]; e >= 0 {
				cs = append(cs, lp.Coef{Var: int(e), Val: 1})
			}
		}
	}
	return cs
}

// addViaAdjacency forbids simultaneously occupying conflicting via sites
// (0/4/8 blocked neighbors per the rule configuration).
func (m *ILPModel) addViaAdjacency() {
	g := m.G
	for si := range g.Sites {
		for _, sj := range g.SiteAdj[si] {
			if int32(si) > sj {
				continue
			}
			cs := append(m.siteUsage(si), m.siteUsage(int(sj))...)
			if len(cs) > 1 {
				m.Model.AddConstraint(cs, lp.LE, 1)
			}
		}
	}
}

// addSADPConstraints emits constraints (6)-(12): per-net EOL indicator
// variables p with linearized products, and pairwise forbidden EOL
// placements per Fig. 5.
func (m *ILPModel) addSADPConstraints() {
	g := m.G
	if !g.Opt.Rule.HasSADP() {
		return
	}
	// pVar[v][0] = p_lo (wire on lo side), pVar[v][1] = p_hi, per net:
	// indexed pVar[k][v][side].
	type key struct {
		v    int32
		side int // 0 = lo, 1 = hi
	}
	pVars := make([]map[key]int32, len(m.EVar))

	for k := range m.EVar {
		pVars[k] = map[key]int32{}
		for v := int32(0); v < int32(g.NumGrid); v++ {
			_, _, z := g.XYZ(v)
			if !g.IsSADPLayer(z) || z < g.Clip.MinLayer || g.Blocked[v] {
				continue
			}
			for side := 0; side < 2; side++ {
				sa := g.Side[v]
				wireIn, wireOut := sa.LoIn, sa.LoOut
				if side == 1 {
					wireIn, wireOut = sa.HiIn, sa.HiOut
				}
				// Products: (wire-in x via-out) and (wire-out x via-in).
				var products []int
				addProduct := func(e1, e2 int32) {
					if e1 < 0 || e2 < 0 {
						return
					}
					v1, v2 := m.EVar[k][e1], m.EVar[k][e2]
					if v1 < 0 || v2 < 0 {
						return
					}
					q := m.Model.AddBinary(0)
					m.NumProductVars++
					// q = v1 * v2 via (8).
					m.Model.AddConstraint([]lp.Coef{{Var: q, Val: 1}, {Var: int(v1), Val: -1}}, lp.LE, 0)
					m.Model.AddConstraint([]lp.Coef{{Var: q, Val: 1}, {Var: int(v2), Val: -1}}, lp.LE, 0)
					m.Model.AddConstraint([]lp.Coef{
						{Var: q, Val: 1}, {Var: int(v1), Val: -1}, {Var: int(v2), Val: -1},
					}, lp.GE, -1)
					m.products = append(m.products, prodDef{q: q, a: int(v1), b: int(v2)})
					products = append(products, q)
				}
				for _, viaArc := range g.ViaArcsAt(v) {
					a := g.Arcs[viaArc]
					if a.From == v { // via-out
						addProduct(wireIn, viaArc)
					} else { // via-in
						addProduct(wireOut, viaArc)
					}
				}
				if len(products) == 0 {
					continue
				}
				p := m.Model.AddBinary(0)
				m.NumPVars++
				pVars[k][key{v, side}] = int32(p)
				var sum []lp.Coef
				for _, q := range products {
					// p >= q
					m.Model.AddConstraint([]lp.Coef{{Var: p, Val: 1}, {Var: q, Val: -1}}, lp.GE, 0)
					sum = append(sum, lp.Coef{Var: q, Val: 1})
				}
				// p <= sum of products
				sum = append(sum, lp.Coef{Var: p, Val: -1})
				m.Model.AddConstraint(sum, lp.GE, 0)
				m.ors = append(m.ors, orDef{p: p, qs: products})
			}
		}
	}

	// Global sums per (vertex, side).
	globalP := func(v int32, side int) []lp.Coef {
		var cs []lp.Coef
		for k := range pVars {
			if p, ok := pVars[k][key{v, side}]; ok {
				cs = append(cs, lp.Coef{Var: int(p), Val: 1})
			}
		}
		return cs
	}

	// Forbidden pairs (11)-(12), deduplicated.
	type pairKey struct {
		vA int32
		sA int
		vB int32
		sB int
	}
	emitted := map[pairKey]bool{}
	emit := func(vA int32, sA int, vB int32, sB int) {
		if vA > vB || (vA == vB && sA > sB) {
			vA, vB = vB, vA
			sA, sB = sB, sA
		}
		k := pairKey{vA, sA, vB, sB}
		if emitted[k] {
			return
		}
		emitted[k] = true
		a := globalP(vA, sA)
		b := globalP(vB, sB)
		if len(a) == 0 || len(b) == 0 {
			return
		}
		m.Model.AddConstraint(append(a, b...), lp.LE, 1)
	}
	for v := int32(0); v < int32(g.NumGrid); v++ {
		_, _, z := g.XYZ(v)
		if !g.IsSADPLayer(z) || z < g.Clip.MinLayer || g.Blocked[v] {
			continue
		}
		for side := 0; side < 2; side++ {
			hiWire := side == 1
			facing, sameDir := g.EOLNeighborSets(v, hiWire)
			opp := 1 - side
			for _, j := range facing {
				emit(v, side, j, opp)
			}
			for _, j := range sameDir {
				emit(v, side, j, side)
			}
		}
	}
}

// SolveILP builds and optimizes the full ILP for the graph, optionally warm
// started with a heuristic incumbent, and decodes the routing solution.
func SolveILP(g *rgraph.Graph, opt ilp.Options) (*Solution, error) {
	start := time.Now()
	// Identify the solve in traces: the MILP engine knows nothing about clips.
	opt.SpanAttrs = append(opt.SpanAttrs, obs.A("clip", g.Clip.Name))
	m := BuildILP(g)
	buildDur := time.Since(start)
	var seedDur time.Duration
	if opt.Incumbent == nil {
		seedStart := time.Now()
		if h := SolveHeuristic(g, HeuristicOptions{}); h.Feasible {
			if inc := m.EncodeSolution(h); inc != nil {
				opt.Incumbent = inc
			}
		}
		seedDur = time.Since(seedStart)
	}
	opt.IntegralObjective = true
	res := m.Model.Solve(opt)
	// The MILP engine's breakdown covers the solve; prepend the model build
	// and heuristic warm start so the phases still partition SolveILP's wall
	// time (decode is the only unattributed tail, and it is tiny).
	phases := res.Stats.Phases.Merge(obs.Breakdown{PhaseSetup: buildDur, PhaseSeed: seedDur})
	sol := &Solution{
		Runtime: time.Since(start), Nodes: res.Nodes, LPIters: res.LPIters,
		Stats: SolveStats{
			Nodes:            res.Stats.Nodes,
			MaxDepth:         res.Stats.MaxDepth,
			Incumbents:       res.Stats.Incumbents,
			LPSolves:         res.Stats.LPSolves,
			LPIters:          res.Stats.LPIters,
			LPWarmStarts:     res.Stats.LPWarmStarts,
			LPRefactors:      res.Stats.LPRefactors,
			LPEtaPivots:      res.Stats.LPEtaPivots,
			LPFTRANNnz:       res.Stats.LPFTRANNnz,
			LPBTRANNnz:       res.Stats.LPBTRANNnz,
			LPTime:           res.Stats.LPTime,
			LPCandidateHits:  res.Stats.LPCandidateHits,
			LPRefResets:      res.Stats.LPRefResets,
			LPDualBoundFlips: res.Stats.LPDualBoundFlips,
			PresolveRows:     res.Stats.PresolveRows,
			PresolveCols:     res.Stats.PresolveCols,

			LPRefactorEtaLen:         res.Stats.LPRefactorEtaLen,
			LPRefactorFill:           res.Stats.LPRefactorFill,
			LPRefactorPivotQuality:   res.Stats.LPRefactorPivotQuality,
			LPRefactorUpdateRejected: res.Stats.LPRefactorUpdateRejected,

			ModelRows:   m.Model.NumConstraints(),
			ModelCols:   m.Model.NumVars(),
			ModelNNZ:    m.Model.Prob.NumNonzeros(),
			Elapsed:     time.Since(start),
			Termination: string(res.Stats.Termination),
			Phases:      phases,
			LPPhases:    res.Stats.LPPhases,
			BoundTrace:  ilpBoundTrace(res.Stats.BoundTrace),
		},
	}
	switch res.Status {
	case ilp.Infeasible:
		sol.Feasible = false
		sol.Proven = true
		return sol, nil
	case ilp.Limit:
		if res.Completed {
			// Full tree explored under a foreign portfolio incumbent: no
			// routing cheaper than that incumbent exists. Return the proof
			// without a local solution (Feasible=false, Proven=true is here a
			// one-sided optimality certificate, not an infeasibility claim —
			// SolvePortfolio composes it with the incumbent holder's result).
			sol.Feasible = false
			sol.Proven = true
			return sol, nil
		}
		return sol, fmt.Errorf("core: ILP limit reached with no solution")
	case ilp.Feasible:
		sol.Proven = false
	case ilp.Optimal:
		sol.Proven = true
	}
	sol.Feasible = true
	sol.NetArcs = m.DecodeSolution(res.X)
	summarize(g, sol)
	return sol, nil
}

// ilpBoundTrace converts the MILP engine's float-valued convergence trace to
// the shared integer BoundSample form (-1 sentinels for "no bound yet" /
// "no incumbent yet"; rounding is exact since the objective is integral).
func ilpBoundTrace(pts []ilp.BoundPoint) []BoundSample {
	if len(pts) == 0 {
		return nil
	}
	out := make([]BoundSample, len(pts))
	for i, p := range pts {
		bound, inc := int64(-1), int64(-1)
		if !math.IsInf(p.Bound, -1) {
			bound = int64(math.Round(p.Bound))
		}
		if !math.IsInf(p.Incumbent, 1) {
			inc = int64(math.Round(p.Incumbent))
		}
		out[i] = BoundSample{
			ElapsedMS: float64(p.Elapsed.Microseconds()) / 1000.0,
			Nodes:     p.Nodes, Depth: p.Depth, Open: p.Open,
			Bound: bound, Incumbent: inc,
		}
	}
	return out
}

// DecodeSolution converts an ILP variable assignment to per-net arc lists.
func (m *ILPModel) DecodeSolution(x []float64) [][]int32 {
	out := make([][]int32, len(m.EVar))
	for k := range m.EVar {
		for a, e := range m.EVar[k] {
			if e >= 0 && x[e] > 0.5 {
				out[k] = append(out[k], int32(a))
			}
		}
	}
	return out
}

// EncodeSolution converts a routing solution into a full variable assignment
// usable as a warm-start incumbent. Returns nil if the solution uses an arc
// unavailable in this model or is otherwise not encodable (e.g. it violates
// the SADP product bookkeeping).
func (m *ILPModel) EncodeSolution(sol *Solution) []float64 {
	if sol == nil || !sol.Feasible {
		return nil
	}
	x := make([]float64, m.Model.NumVars())
	g := m.G
	for k, arcs := range sol.NetArcs {
		// Per-net flow: count units reaching each sink through arc usage.
		// Reconstruct flows by BFS from sinks back to source over used arcs.
		used := map[int32]bool{}
		for _, a := range arcs {
			if m.EVar[k][a] < 0 {
				return nil
			}
			x[m.EVar[k][a]] = 1
			used[a] = true
		}
		flow := map[int32]int{}
		// Push one unit along the unique used path from each sink to source
		// by reverse walk (the solution is a tree, so predecessors are
		// unique).
		pred := map[int32]int32{} // vertex -> used arc entering it
		for _, a := range arcs {
			pred[g.Arcs[a].To] = a
		}
		for _, t := range g.SinkVerts[k] {
			v := t
			for v != g.Source[k] {
				a, ok := pred[v]
				if !ok {
					return nil
				}
				flow[a]++
				if flow[a] > len(g.SinkVerts[k]) {
					return nil // cycle guard
				}
				v = g.Arcs[a].From
			}
		}
		for a, fl := range flow {
			if fv := m.FVar[k][a]; fv >= 0 {
				x[fv] = float64(fl)
			} else if fl > 1 {
				return nil
			}
		}
	}
	m.computeAux(x)
	if ok, _ := m.Model.CheckFeasible(x, 1e-6); !ok {
		return nil
	}
	return x
}

// computeAux derives site-usage, product and OR auxiliary variables from the
// e-variable assignment in x.
func (m *ILPModel) computeAux(x []float64) {
	for _, ud := range m.siteUs {
		v := 0.0
		for _, e := range ud.es {
			if x[e] > 0.5 {
				v = 1
				break
			}
		}
		x[ud.u] = v
	}
	for _, pd := range m.products {
		if x[pd.a] > 0.5 && x[pd.b] > 0.5 {
			x[pd.q] = 1
		} else {
			x[pd.q] = 0
		}
	}
	for _, od := range m.ors {
		v := 0.0
		for _, q := range od.qs {
			if x[q] > 0.5 {
				v = 1
				break
			}
		}
		x[od.p] = v
	}
}
