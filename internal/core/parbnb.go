package core

import (
	"container/heap"
	"context"
	"sync"
	"time"

	"optrouter/internal/drc"
	"optrouter/internal/obs"
	"optrouter/internal/rgraph"
	"optrouter/internal/sched"
)

// This file implements the deterministic round-parallel variant of the
// CDC-BnB (BnBOptions.Par > 0). The search is bulk-synchronous: each round
// pops a fixed-width batch of open nodes off the priority queue, evaluates
// the batch concurrently on an internal/sched worker pool, and folds the
// outcomes back serially in batch order. Three choices make the explored
// tree — and therefore the objective, the proof status and the returned
// routes — identical for every worker count, including Par=1:
//
//   - The round width is a fixed constant, independent of Par, so the batch
//     boundaries (and with them dive/Lagrangian trigger points, node numbers
//     and the pruning cutoff each node sees) never depend on parallelism.
//   - Node evaluation is a pure function of (graph, bans, round-start
//     cutoff): the Lagrangian penalties are reset before every bound call
//     (see lagrangian.reset), and the shared route cache can only change
//     *when* a route is computed, never what it is.
//   - The priority queue breaks ties with a total order — (lb, deeper
//     first, seed-salted mix, insertion sequence) — so the popped batch is
//     a deterministic function of the fold history, not of arrival order.
//
// Scheduling-dependent quantities (which worker evaluated which node, steal
// counts, cache hit counts, wall times) are reported in SolveStats but are
// explicitly outside the determinism guarantee. With a portfolio Exchange
// attached, foreign incumbents tighten round cutoffs at nondeterministic
// times, so cross-run determinism is then also waived — exactness is not.

// parRoundWidth is the fixed batch width of the round-synchronous search.
// It must not depend on Par: the determinism guarantee rests on identical
// batch boundaries for every worker count. 32 keeps 8 workers busy while
// bounding how far the parallel engine speculates past a new incumbent.
const parRoundWidth = 32

// parNode is an open node of the parallel search tree.
type parNode struct {
	parent *parNode
	bans   []banKey // bans added at this node
	lb     int64    // lower bound computed at creation
	depth  int
	mix    uint64 // seed-salted tie-break key (diversification knob)
	seq    int64  // fold-order insertion sequence (final tie-break)
}

func (n *parNode) allBans(buf map[banKey]bool) map[banKey]bool {
	if buf == nil {
		buf = map[banKey]bool{}
	} else {
		clear(buf)
	}
	for cur := n; cur != nil; cur = cur.parent {
		for _, b := range cur.bans {
			buf[b] = true
		}
	}
	return buf
}

// parPQ is a min-heap with a total order: lower bound, then deeper first,
// then the seed-salted mix, then insertion sequence. The last two keys make
// sibling order a pure function of (Seed, fold history).
type parPQ []*parNode

func (p parPQ) Len() int { return len(p) }
func (p parPQ) Less(i, j int) bool {
	if p[i].lb != p[j].lb {
		return p[i].lb < p[j].lb
	}
	if p[i].depth != p[j].depth {
		return p[i].depth > p[j].depth
	}
	if p[i].mix != p[j].mix {
		return p[i].mix < p[j].mix
	}
	return p[i].seq < p[j].seq
}
func (p parPQ) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *parPQ) Push(x interface{}) { *p = append(*p, x.(*parNode)) }
func (p *parPQ) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// parCache is the cross-worker per-net route memo: one mutex-guarded shard
// per net (branches ban arcs for a single net, so contention concentrates on
// the net being branched, and different nets never contend). Entries are
// pointers and immutable after insertion, so a reader holds a stable route
// even while other workers append to the same bucket. Lookups verify the
// ban-id set like the serial cache, so a fingerprint collision degrades to a
// miss, never a wrong route.
type parCache struct {
	shards []parCacheShard
}

type parCacheShard struct {
	mu sync.Mutex
	m  map[uint64][]*cachedRoute
}

func newParCache(nNets int) *parCache {
	c := &parCache{shards: make([]parCacheShard, nNets)}
	for k := range c.shards {
		c.shards[k].m = map[uint64][]*cachedRoute{}
	}
	return c
}

// lookupRoutePtr is lookupRoute over the shared cache's pointer entries.
func lookupRoutePtr(entries []*cachedRoute, k, cnt int, bans map[banKey]bool) *cachedRoute {
	for _, e := range entries {
		if len(e.ids) != cnt {
			continue
		}
		match := true
		for _, id := range e.ids {
			if !bans[banKey{net: int32(k), arc: id}] {
				match = false
				break
			}
		}
		if match {
			return e
		}
	}
	return nil
}

func (c *parCache) lookup(k int, h uint64, cnt int, bans map[banKey]bool) *cachedRoute {
	s := &c.shards[k]
	s.mu.Lock()
	defer s.mu.Unlock()
	return lookupRoutePtr(s.m[h], k, cnt, bans)
}

// insert publishes a computed route, deduplicating against a racing worker
// that computed the same ban set concurrently: the first insertion wins and
// everyone shares its entry (the routes are identical either way, since the
// Steiner kernel is deterministic).
func (c *parCache) insert(k int, h uint64, cnt int, bans map[banKey]bool, ent *cachedRoute) *cachedRoute {
	s := &c.shards[k]
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev := lookupRoutePtr(s.m[h], k, cnt, bans); prev != nil {
		return prev
	}
	s.m[h] = append(s.m[h], ent)
	return ent
}

// parEngine is the shared, read-only solve state.
type parEngine struct {
	g     *rgraph.Graph
	nNets int
	cache *parCache
}

// parWorker is one worker's private solver state. A given sched worker id
// only ever runs one job at a time, and round barriers order rounds, so no
// field needs synchronization.
type parWorker struct {
	ctxs     []*steinerCtx
	baseBans [][]bool
	lag      *lagrangian
	trial    []banKey
	banBuf   map[banKey]bool

	// Counters merged into SolveStats after the search. The per-worker split
	// is scheduling-dependent; the sums are deterministic (except cacheHits,
	// which depends on compute/lookup interleaving).
	nodes     int
	cacheHits int
	drcChecks int
	drcTime   time.Duration
	lagRounds int
	dives     int
}

func newParWorker(e *parEngine, own ownership) *parWorker {
	arena := NewSteinerArena()
	st := &parWorker{
		lag:    newLagrangian(e.g),
		banBuf: map[banKey]bool{},
	}
	st.ctxs = make([]*steinerCtx, e.nNets)
	st.baseBans = make([][]bool, e.nNets)
	for k := 0; k < e.nNets; k++ {
		st.ctxs[k] = newSteinerCtx(e.g, own, k, arena)
		st.baseBans[k] = append([]bool(nil), st.ctxs[k].banned...)
	}
	return st
}

// evaluate solves all per-net Steiner problems under the node's bans,
// sharing routes through the cross-worker cache. The result is a pure
// function of (graph, bans): the cache can only save recomputation.
func (st *parWorker) evaluate(e *parEngine, bans map[banKey]bool) (routes [][]int32, lb int64, feasible bool) {
	routes = make([][]int32, e.nNets)
	for k := 0; k < e.nNets; k++ {
		h, cnt := banFingerprint(k, bans)
		cr := e.cache.lookup(k, h, cnt, bans)
		if cr != nil {
			st.cacheHits++
		} else {
			copy(st.ctxs[k].banned, st.baseBans[k])
			ids := make([]int32, 0, cnt)
			for b := range bans {
				if int(b.net) == k {
					st.ctxs[k].banned[b.arc] = true
					ids = append(ids, b.arc)
				}
			}
			arcs, cost, ok := steinerTree(st.ctxs[k])
			ent := &cachedRoute{ids: ids, cost: cost, ok: ok}
			if ok {
				// The solver's arc buffer is arena-owned; the shared cache
				// outlives the job, so it keeps a copy.
				ent.arcs = append([]int32(nil), arcs...)
			}
			cr = e.cache.insert(k, h, cnt, bans, ent)
		}
		if !cr.ok {
			return nil, 0, false
		}
		routes[k] = cr.arcs
		lb += cr.cost
	}
	return routes, lb, true
}

func (st *parWorker) checkDRC(e *parEngine, routes [][]int32) []drc.Violation {
	t0 := time.Now()
	viols := drc.Check(e.g, routes)
	st.drcChecks++
	st.drcTime += time.Since(t0)
	return viols
}

// tryBans speculatively applies child bans, evaluates, and rolls back.
func (st *parWorker) tryBans(e *parEngine, bans map[banKey]bool, childBans []banKey) (int64, bool) {
	st.trial = st.trial[:0]
	for _, b := range childBans {
		if !bans[b] {
			bans[b] = true
			st.trial = append(st.trial, b)
		}
	}
	_, c, ok := st.evaluate(e, bans)
	for _, b := range st.trial {
		delete(bans, b)
	}
	return c, ok
}

// diveRepair is the serial engine's primal dive on worker-local state.
func (st *parWorker) diveRepair(e *parEngine, bans map[banKey]bool, cutoff int64) (int64, [][]int32) {
	local := map[banKey]bool{}
	for k, v := range bans {
		local[k] = v
	}
	for step := 0; step < 24; step++ {
		routes, cost, feasible := st.evaluate(e, local)
		if !feasible || cost >= cutoff {
			return -1, nil
		}
		viols := st.checkDRC(e, routes)
		if len(viols) == 0 {
			return cost, routes
		}
		v := pickViolation(viols)
		bestC := int64(-1)
		var bestB []banKey
		for _, cb := range branchBans(e.g, v, routes) {
			if len(cb) == 0 {
				continue
			}
			c, ok := st.tryBans(e, local, cb)
			if !ok {
				continue
			}
			if bestC < 0 || c < bestC {
				bestC = c
				bestB = cb
			}
		}
		if bestB == nil {
			return -1, nil
		}
		for _, b := range bestB {
			local[b] = true
		}
	}
	return -1, nil
}

// applyBans loads a node's forbiddances into the worker's net contexts (the
// Lagrangian bound cannot go through the route cache).
func (st *parWorker) applyBans(bans map[banKey]bool) {
	for k := range st.ctxs {
		copy(st.ctxs[k].banned, st.baseBans[k])
	}
	for b := range bans {
		st.ctxs[b.net].banned[b.arc] = true
	}
}

// parChild is one feasible, non-dominated child produced by strong branching.
type parChild struct {
	bans []banKey
	lb   int64
}

// parOutcome is the result of evaluating one dispatched node. Everything the
// fold needs is here; workers never touch shared search state directly.
type parOutcome struct {
	act        string // infeasible | dominated | solved | lagrangian | fathom | branch
	lb         int64
	routes     [][]int32 // solved: the jointly legal per-net optima
	children   []parChild
	kind       string    // violation kind branched on
	diveCost   int64     // dive incumbent candidate (-1 = none)
	diveRoutes [][]int32 // its routes
	worker     int
}

// solveParBnB runs the deterministic round-parallel CDC-BnB. See the file
// comment for the determinism argument; the search logic per node is the
// serial engine's, restated against worker-local state and a round-start
// pruning cutoff.
func solveParBnB(g *rgraph.Graph, opt BnBOptions) (*Solution, error) {
	start := time.Now()
	opt = opt.withDefaults()
	par := opt.Par
	ex := opt.Exchange
	own := newOwnership(g)
	nNets := len(g.Clip.Nets)
	eng := &parEngine{g: g, nNets: nNets, cache: newParCache(nNets)}

	var stats SolveStats
	stats.Par = par
	gst := g.Stats()
	span := opt.Tracer.Start("bnb.solve",
		obs.A("clip", g.Clip.Name),
		obs.A("nets", nNets),
		obs.A("verts", gst.Verts),
		obs.A("arcs", gst.Arcs),
		obs.A("par", par))

	// Phase attribution runs on the main goroutine's clock only: seed, setup
	// and search. Worker-internal Steiner/DRC/dive time is concurrent wall
	// time and cannot partition the solve; DRCTime still aggregates the
	// workers' in-check time for rate metrics.
	clock := obs.NewPhaseClock()
	clock.Enter(PhaseSeed)

	var best *Solution
	var bestCost int64 = 1 << 60
	if !opt.NoHeuristicSeed {
		hspan := span.Child("heuristic.seed")
		h := SolveHeuristic(g, HeuristicOptions{Arena: NewSteinerArena()})
		hspan.SetAttr("feasible", h.Feasible)
		hspan.End()
		if h.Feasible {
			best = h
			bestCost = int64(h.Cost)
			if ex.OfferIncumbent(bestCost) {
				stats.IncumbentExchanges++
			}
			stats.Incumbents++
			stats.BoundTrace = append(stats.BoundTrace, BoundSample{
				ElapsedMS: msSince(start), Bound: -1, Incumbent: bestCost,
			})
			span.Event("incumbent", obs.A("cost", h.Cost), obs.A("source", "heuristic-seed"))
		} else if h.Proven {
			h.Runtime = time.Since(start)
			stats.Elapsed = h.Runtime
			stats.Termination = "infeasible"
			clock.Stop()
			stats.Phases = clock.Breakdown()
			stats.BoundTrace = append(stats.BoundTrace, BoundSample{
				ElapsedMS: msSince(start), Bound: -1, Incumbent: -1,
			})
			h.Stats = stats
			span.SetAttr("termination", "infeasible")
			span.SetAttr("phases_ms", stats.Phases.MS())
			span.End()
			return h, nil // proven infeasible by the probe
		}
	}

	clock.Enter(PhaseSetup)
	ws := make([]*parWorker, par)
	worker := func(id int) *parWorker {
		if ws[id] == nil {
			ws[id] = newParWorker(eng, own)
		}
		return ws[id]
	}

	// mixSeed salts every node's tie-break key; seq (assigned in fold order)
	// keeps the key unique and deterministic.
	mixSeed := splitmix64(uint64(opt.Seed) ^ 0xd1b54a32d192ed03)
	seq := int64(0)
	root := &parNode{mix: splitmix64(mixSeed)}
	pq := &parPQ{root}
	heap.Init(pq)

	nodes := 0
	sinceProgress := 0
	proven := true
	curBound := int64(-1)
	curDepth := 0
	var rs sched.RunStats
	fl := obs.NewFlight(span, opt.Flight)

	sample := func() {
		if len(stats.BoundTrace) >= maxTraceSamples {
			return
		}
		inc := int64(-1)
		if best != nil {
			inc = bestCost
		}
		stats.BoundTrace = append(stats.BoundTrace, BoundSample{
			ElapsedMS: msSince(start), Nodes: nodes, Depth: curDepth,
			Open: pq.Len(), Bound: curBound, Incumbent: inc,
		})
	}
	reportProgress := func() {
		if opt.Progress == nil {
			return
		}
		inc := int64(-1)
		if best != nil {
			inc = bestCost
		}
		opt.Progress(BnBProgress{
			Nodes: nodes, Open: pq.Len(), Incumbent: inc,
			Bound: curBound, Elapsed: time.Since(start),
		})
	}

	runCtx := opt.Ctx
	if runCtx == nil {
		runCtx = context.Background()
	}

	clock.Enter(PhaseSearch)
	batch := make([]*parNode, 0, parRoundWidth)
	cancelled := false
	for pq.Len() > 0 && !cancelled {
		if nodes >= opt.MaxNodes {
			proven = false
			stats.Termination = "node-limit"
			break
		}
		if opt.TimeLimit > 0 && time.Since(start) > opt.TimeLimit {
			proven = false
			stats.Termination = "time-limit"
			break
		}
		if opt.Ctx != nil && opt.Ctx.Err() != nil {
			proven = false
			stats.Termination = "cancelled"
			break
		}
		if ex.Decided() {
			inc, _ := ex.Incumbent()
			proven = best != nil && bestCost == inc
			stats.Termination = "decided"
			break
		}
		cut := bestCost
		if f, ok := ex.Incumbent(); ok && f < cut {
			cut = f
		}

		// Pop the round's batch; stop at the cutoff — best-first order means
		// everything behind a dominated top is dominated too.
		batch = batch[:0]
		for len(batch) < parRoundWidth && pq.Len() > 0 && (*pq)[0].lb < cut {
			batch = append(batch, heap.Pop(pq).(*parNode))
		}
		if len(batch) == 0 {
			if fl != nil {
				top := (*pq)[0]
				fl.Event("node", obs.A("act", "cutoff"), obs.A("n", nodes),
					obs.A("d", top.depth), obs.A("lb", top.lb))
			}
			break // every open node is dominated: search complete
		}
		if batch[0].lb > curBound {
			curBound = batch[0].lb
			// The round minimum is the global lower bound: every other open
			// node and every dispatched node has lb >= batch[0].lb.
			if b := min(curBound, cut); b > 0 {
				ex.OfferBound(b)
			}
			if len(stats.BoundTrace) < maxTraceSamples-64 {
				sample()
			}
		}
		curDepth = batch[0].depth

		// Dispatch-time flags: node numbers, dive triggers and the Lagrangian
		// stall gate are all computed from round-start state, so they are
		// identical for every worker count.
		nodesBefore := nodes
		nodes += len(batch)
		roundInc := int64(-1)
		if best != nil {
			roundInc = bestCost
		}
		jobs := make([]sched.Job[parOutcome], len(batch))
		for i := range batch {
			nd := batch[i]
			if nd.depth > stats.MaxDepth {
				stats.MaxDepth = nd.depth
			}
			nodeNum := nodesBefore + i + 1
			diveFlag := nodeNum == 1 || nodeNum%512 == 0
			lagFlag := (best != nil || cut < bestCost) && sinceProgress+i > 24
			roundCut := cut
			roundBound := curBound
			jobs[i] = func(jctx context.Context) (parOutcome, error) {
				st := worker(sched.WorkerID(jctx))
				st.nodes++
				out := parOutcome{lb: nd.lb, diveCost: -1, worker: sched.WorkerID(jctx)}
				emit := func(act string, lb int64, extra ...obs.Attr) {
					out.act = act
					if fl == nil {
						return
					}
					attrs := make([]obs.Attr, 0, 7+len(extra))
					attrs = append(attrs,
						obs.A("act", act), obs.A("n", nodeNum), obs.A("d", nd.depth), obs.A("lb", lb),
						obs.A("w", out.worker))
					if roundBound >= 0 {
						attrs = append(attrs, obs.A("bnd", roundBound))
					}
					if roundInc >= 0 {
						attrs = append(attrs, obs.A("inc", roundInc))
					}
					fl.Event("node", append(attrs, extra...)...)
				}

				st.banBuf = nd.allBans(st.banBuf)
				bans := st.banBuf
				routes, lb, feasible := st.evaluate(eng, bans)
				if !feasible {
					emit("infeasible", nd.lb)
					return out, nil
				}
				out.lb = lb
				if lb >= roundCut {
					emit("dominated", lb)
					return out, nil
				}
				viols := st.checkDRC(eng, routes)
				if len(viols) == 0 {
					out.routes = routes
					emit("solved", lb)
					return out, nil
				}
				if lagFlag && lb < roundCut {
					// Fresh penalties per call: the bound must be a pure
					// function of (graph, bans) for tree determinism.
					st.lag.reset()
					st.applyBans(bans)
					st.lagRounds++
					lagLB := st.lag.bound(st.ctxs, 2)
					if lagLB == -2 || lagLB >= roundCut {
						emit("lagrangian", lb, obs.A("lag_lb", lagLB))
						return out, nil
					}
				}
				if diveFlag {
					st.dives++
					if c, r := st.diveRepair(eng, bans, roundCut); c >= 0 {
						out.diveCost, out.diveRoutes = c, r
					}
				}

				// Strong branching (identical policy to the serial engine).
				cands := candidateViolations(viols, 3)
				bestScore := int64(-1)
				var bestKids []parChild
				var bestKind string
				for _, v := range cands {
					sets := branchBans(eng.g, v, routes)
					kids := make([]parChild, 0, len(sets))
					minLB := int64(1) << 60
					anyFeasible := false
					for _, cb := range sets {
						if clb, ok := st.tryBans(eng, bans, cb); ok && clb < roundCut {
							kids = append(kids, parChild{bans: cb, lb: clb})
							anyFeasible = true
							if clb < minLB {
								minLB = clb
							}
						}
					}
					if !anyFeasible {
						// Every child of this violation is infeasible or
						// dominated: the node itself is settled.
						bestKids = nil
						bestScore = 1 << 60
						bestKind = v.Kind.String()
						break
					}
					if minLB > bestScore {
						bestScore = minLB
						bestKids = kids
						bestKind = v.Kind.String()
					}
				}
				out.children = bestKids
				out.kind = bestKind
				if len(bestKids) == 0 {
					emit("fathom", lb, obs.A("kind", bestKind))
				} else {
					emit("branch", lb, obs.A("kind", bestKind), obs.A("kids", len(bestKids)))
				}
				return out, nil
			}
		}

		nw := par
		if nw > len(batch) {
			nw = len(batch)
		}
		res := sched.Run(runCtx, jobs, sched.Options{Workers: nw, Stats: &rs})

		// Serial fold in batch order: incumbent updates, child insertion and
		// sequence numbering depend only on the deterministic outcome list.
		for i, r := range res {
			nd := batch[i]
			if r.Panicked {
				return nil, r.Err
			}
			if r.Err != nil {
				proven = false
				cancelled = true
				stats.Termination = "cancelled"
				continue
			}
			out := r.Value
			switch out.act {
			case "infeasible", "dominated":
				// Pruned; no bookkeeping.
			case "solved":
				if out.lb < bestCost {
					bestCost = out.lb
					best = &Solution{Feasible: true, NetArcs: out.routes, Proven: true}
					summarize(g, best)
					sinceProgress = 0
					if ex.OfferIncumbent(bestCost) {
						stats.IncumbentExchanges++
					}
					stats.Incumbents++
					sample()
					span.Event("incumbent", obs.A("cost", best.Cost), obs.A("node", nodesBefore+i+1))
					reportProgress()
				}
			case "lagrangian":
				sinceProgress = 0
			case "fathom", "branch":
				sinceProgress++
				if out.diveCost >= 0 && out.diveCost < bestCost {
					bestCost = out.diveCost
					best = &Solution{Feasible: true, NetArcs: out.diveRoutes}
					summarize(g, best)
					if ex.OfferIncumbent(bestCost) {
						stats.IncumbentExchanges++
					}
					stats.Incumbents++
					sample()
					span.Event("incumbent", obs.A("cost", best.Cost),
						obs.A("node", nodesBefore+i+1), obs.A("source", "dive"))
					reportProgress()
				}
				for _, ch := range out.children {
					stats.BansGenerated += len(ch.bans)
					seq++
					heap.Push(pq, &parNode{
						parent: nd, bans: ch.bans, lb: ch.lb, depth: nd.depth + 1,
						mix: splitmix64(mixSeed + uint64(seq)), seq: seq,
					})
				}
			}
		}
		reportProgress()
	}

	sol := best
	if sol == nil {
		sol = &Solution{Feasible: false}
	}
	sol.Proven = proven
	sol.Nodes = nodes
	sol.Runtime = time.Since(start)

	stats.Nodes = nodes
	stats.NodesPerWorker = make([]int, par)
	for id, st := range ws {
		if st == nil {
			continue
		}
		stats.NodesPerWorker[id] = st.nodes
		stats.SteinerCacheHits += st.cacheHits
		stats.DRCChecks += st.drcChecks
		stats.DRCTime += st.drcTime
		stats.LagrangianRounds += st.lagRounds
		stats.Dives += st.dives
		for k := range st.ctxs {
			stats.SteinerSolves += st.ctxs[k].solves
			stats.SteinerCells += st.ctxs[k].cells
		}
	}
	stats.Steals = int(rs.Steals.Load())
	stats.Elapsed = sol.Runtime
	if stats.Termination == "" {
		if sol.Feasible {
			stats.Termination = "optimal"
		} else {
			stats.Termination = "infeasible"
		}
	}
	clock.Stop()
	stats.Phases = clock.Breakdown()
	if len(stats.BoundTrace) >= maxTraceSamples {
		stats.BoundTrace = stats.BoundTrace[:maxTraceSamples-1]
	}
	sample()
	sol.Stats = stats
	reportProgress()
	span.SetAttr("nodes", nodes)
	span.SetAttr("steiner_solves", stats.SteinerSolves)
	span.SetAttr("drc_checks", stats.DRCChecks)
	span.SetAttr("steals", stats.Steals)
	span.SetAttr("incumbent_exchanges", stats.IncumbentExchanges)
	span.SetAttr("feasible", sol.Feasible)
	span.SetAttr("proven", sol.Proven)
	span.SetAttr("termination", stats.Termination)
	span.SetAttr("phases_ms", stats.Phases.MS())
	fl.Finish()
	span.End()
	return sol, nil
}
