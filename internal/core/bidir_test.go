package core

import (
	"testing"

	"optrouter/internal/clip"
	"optrouter/internal/drc"
	"optrouter/internal/rgraph"
)

// Bidirectional routing is a relaxation of unidirectional routing, so the
// optimal cost can only improve (the quantitative version of the paper's
// observation that unidirectional patterning costs density).
func TestBidirectionalNeverWorse(t *testing.T) {
	for seed := int64(40); seed < 48; seed++ {
		opt := clip.DefaultSynth(seed)
		opt.NX, opt.NY, opt.NZ = 5, 5, 3
		opt.NumNets = 3
		c := clip.Synthesize(opt)

		gu, err := rgraph.Build(c, rgraph.Options{})
		if err != nil {
			t.Fatal(err)
		}
		su, err := SolveBnB(gu, BnBOptions{})
		if err != nil {
			t.Fatal(err)
		}

		gb, err := rgraph.Build(c, rgraph.Options{Bidirectional: true})
		if err != nil {
			t.Fatal(err)
		}
		sb, err := SolveBnB(gb, BnBOptions{})
		if err != nil {
			t.Fatal(err)
		}

		if su.Feasible && !sb.Feasible {
			t.Fatalf("seed %d: unidirectional routable but bidirectional not", seed)
		}
		if su.Feasible && sb.Feasible && sb.Cost > su.Cost {
			t.Fatalf("seed %d: bidirectional cost %d > unidirectional %d", seed, sb.Cost, su.Cost)
		}
		if sb.Feasible {
			if v := drc.Check(gb, sb.NetArcs); len(v) != 0 {
				t.Fatalf("seed %d: bidirectional solution dirty: %v", seed, v)
			}
		}
	}
}

// A crossing that needs a layer change when unidirectional resolves in-plane
// when bidirectional: the via saving is exactly the relaxation benefit.
func TestBidirectionalSavesVias(t *testing.T) {
	c := &clip.Clip{
		Name: "bidir", Tech: "t",
		NX: 3, NY: 3, NZ: 3, MinLayer: 1,
		Nets: []clip.Net{
			{Name: "b", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 0, Y: 1, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 2, Y: 1, Z: 1}}},
			}},
		},
	}
	gu, _ := rgraph.Build(c, rgraph.Options{})
	su, err := SolveBnB(gu, BnBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := rgraph.Build(c, rgraph.Options{Bidirectional: true})
	sb, err := SolveBnB(gb, BnBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Unidirectional: M2 is vertical, so the horizontal 2-track connection
	// costs 2 vias + 2 wire = 10. Bidirectional: 2 wire.
	if !su.Feasible || su.Cost != 10 || su.Vias != 2 {
		t.Fatalf("unidirectional: %+v", su)
	}
	if !sb.Feasible || sb.Cost != 2 || sb.Vias != 0 {
		t.Fatalf("bidirectional: %+v", sb)
	}
}
