package core

import (
	"strings"
	"testing"

	"optrouter/internal/clip"
	"optrouter/internal/drc"
	"optrouter/internal/ilp"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

// Via-shape instances must agree between the two exact solvers too.
func TestSolversAgreeWithViaShapes(t *testing.T) {
	shapes := []tech.ViaShape{tech.SingleVia, tech.HBarVia}
	for seed := int64(60); seed < 66; seed++ {
		opt := clip.DefaultSynth(seed)
		opt.NX, opt.NY, opt.NZ = 4, 4, 3
		opt.NumNets = 2
		opt.MaxSinks = 1
		opt.ObstacleFrac = 0
		c := clip.Synthesize(opt)
		g, err := rgraph.Build(c, rgraph.Options{ViaShapes: shapes})
		if err != nil {
			t.Fatal(err)
		}
		bs, err := SolveBnB(g, BnBOptions{})
		if err != nil {
			t.Fatal(err)
		}
		is, err := SolveILP(g, ilp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if bs.Feasible != is.Feasible {
			t.Fatalf("seed %d: feasibility: bnb=%v ilp=%v", seed, bs.Feasible, is.Feasible)
		}
		if bs.Feasible && bs.Cost != is.Cost {
			t.Fatalf("seed %d: cost: bnb=%d ilp=%d", seed, bs.Cost, is.Cost)
		}
		if bs.Feasible {
			if v := drc.Check(g, bs.NetArcs); len(v) != 0 {
				t.Fatalf("seed %d: bnb violations %v", seed, v)
			}
			if v := drc.Check(g, is.NetArcs); len(v) != 0 {
				t.Fatalf("seed %d: ilp violations %v", seed, v)
			}
		}
	}
}

func TestEncodeSolutionRoundTrip(t *testing.T) {
	rule6, _ := tech.RuleByName("RULE6")
	g := mustGraph(t, crossingClip(), rgraph.Options{Rule: rule6})
	h := SolveHeuristic(g, HeuristicOptions{})
	if !h.Feasible {
		t.Skip("heuristic failed; nothing to encode")
	}
	m := BuildILP(g)
	x := m.EncodeSolution(h)
	if x == nil {
		t.Fatal("heuristic solution failed to encode")
	}
	ok, obj := m.Model.CheckFeasible(x, 1e-6)
	if !ok {
		t.Fatal("encoded assignment infeasible")
	}
	if int(obj+0.5) != h.Cost {
		t.Fatalf("encoded objective %v != heuristic cost %d", obj, h.Cost)
	}
	// Decode must reproduce the arc sets.
	decoded := m.DecodeSolution(x)
	for k := range decoded {
		if len(decoded[k]) != len(h.NetArcs[k]) {
			t.Fatalf("net %d: decoded %d arcs, original %d", k, len(decoded[k]), len(h.NetArcs[k]))
		}
	}
}

func TestEncodeRejectsInfeasible(t *testing.T) {
	g := mustGraph(t, crossingClip(), rgraph.Options{})
	m := BuildILP(g)
	if m.EncodeSolution(nil) != nil {
		t.Error("nil solution must encode to nil")
	}
	if m.EncodeSolution(&Solution{Feasible: false}) != nil {
		t.Error("infeasible solution must encode to nil")
	}
}

func TestRenderASCII(t *testing.T) {
	g := mustGraph(t, crossingClip(), rgraph.Options{})
	sol, err := SolveBnB(g, BnBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderASCII(g, sol)
	if !strings.Contains(out, "M2 (V)") || !strings.Contains(out, "M3 (H)") {
		t.Fatalf("missing layer headers:\n%s", out)
	}
	if !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Fatalf("missing net glyphs:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("crossing solution must show vias:\n%s", out)
	}
	// Unrouted render shows pins only and never vias.
	bare := RenderASCII(g, nil)
	if strings.Contains(bare, "*") {
		t.Fatal("unrouted render must not show vias")
	}
}

func TestRenderShowsObstacles(t *testing.T) {
	c := crossingClip()
	c.Obstacles = []clip.AccessPoint{{X: 0, Y: 0, Z: 2}}
	g := mustGraph(t, c, rgraph.Options{})
	if !strings.Contains(RenderASCII(g, nil), "#") {
		t.Fatal("obstacle glyph missing")
	}
}

// Direct Steiner engine tests.
func TestSteinerSingleSinkIsShortestPath(t *testing.T) {
	c := &clip.Clip{
		Name: "sp", Tech: "t",
		NX: 5, NY: 5, NZ: 3, MinLayer: 1,
		Nets: []clip.Net{{Name: "a", Pins: []clip.Pin{
			{Name: "s", APs: []clip.AccessPoint{{X: 0, Y: 0, Z: 1}}},
			{Name: "t", APs: []clip.AccessPoint{{X: 4, Y: 4, Z: 1}}},
		}}},
	}
	g := mustGraph(t, c, rgraph.Options{})
	own := newOwnership(g)
	ctx := newSteinerCtx(g, own, 0, nil)
	arcs, cost, ok := steinerTree(ctx)
	if !ok {
		t.Fatal("no tree found")
	}
	// Manhattan: 4 vertical steps on M2 + column change needs M3: 4 wire
	// across + 2 vias: cost = 4 + 4 + 8 = 16.
	if cost != 16 {
		t.Fatalf("cost = %d, want 16", cost)
	}
	if len(arcs) == 0 {
		t.Fatal("no arcs")
	}
}

func TestSteinerBansRespected(t *testing.T) {
	c := &clip.Clip{
		Name: "ban", Tech: "t",
		NX: 1, NY: 3, NZ: 2, MinLayer: 1,
		Nets: []clip.Net{{Name: "a", Pins: []clip.Pin{
			{Name: "s", APs: []clip.AccessPoint{{X: 0, Y: 0, Z: 1}}},
			{Name: "t", APs: []clip.AccessPoint{{X: 0, Y: 2, Z: 1}}},
		}}},
	}
	g := mustGraph(t, c, rgraph.Options{})
	own := newOwnership(g)
	ctx := newSteinerCtx(g, own, 0, nil)
	_, cost, ok := steinerTree(ctx)
	if !ok || cost != 2 {
		t.Fatalf("baseline: ok=%v cost=%d", ok, cost)
	}
	// Ban every wire arc: the single-column net becomes unroutable.
	for a := range g.Arcs {
		if g.Arcs[a].Kind == rgraph.Wire {
			ctx.banned[a] = true
		}
	}
	if _, _, ok := steinerTree(ctx); ok {
		t.Fatal("banned route still found")
	}
}

func TestSteinerMultiSinkOptimal(t *testing.T) {
	// Source at center bottom, three sinks up the same column at rows
	// 2, 3, 4: one path covers all (cost 4), not 2+3+4.
	c := &clip.Clip{
		Name: "ms", Tech: "t",
		NX: 3, NY: 5, NZ: 2, MinLayer: 1,
		Nets: []clip.Net{{Name: "a", Pins: []clip.Pin{
			{Name: "s", APs: []clip.AccessPoint{{X: 1, Y: 0, Z: 1}}},
			{Name: "t1", APs: []clip.AccessPoint{{X: 1, Y: 2, Z: 1}}},
			{Name: "t2", APs: []clip.AccessPoint{{X: 1, Y: 3, Z: 1}}},
			{Name: "t3", APs: []clip.AccessPoint{{X: 1, Y: 4, Z: 1}}},
		}}},
	}
	g := mustGraph(t, c, rgraph.Options{})
	own := newOwnership(g)
	arcs, cost, ok := steinerTree(newSteinerCtx(g, own, 0, nil))
	if !ok || cost != 4 {
		t.Fatalf("ok=%v cost=%d want 4", ok, cost)
	}
	wires := 0
	for _, a := range arcs {
		if g.Arcs[a].Kind == rgraph.Wire {
			wires++
		}
	}
	if wires != 4 {
		t.Fatalf("wire arcs = %d, want 4 (shared trunk)", wires)
	}
}

func TestBnBNodeLimit(t *testing.T) {
	opt := clip.DefaultSynth(70)
	opt.NX, opt.NY, opt.NZ = 5, 6, 4
	opt.NumNets = 4
	c := clip.Synthesize(opt)
	rule9, _ := tech.RuleByName("RULE9")
	g, err := rgraph.Build(c, rgraph.Options{Rule: rule9})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveBnB(g, BnBOptions{MaxNodes: 2, NoHeuristicSeed: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Proven && sol.Nodes >= 2 && !sol.Feasible {
		t.Fatalf("2-node budget claims a proof of infeasibility: %+v", sol)
	}
}

func TestHeuristicProvenInfeasible(t *testing.T) {
	// Single net with its sink walled off by obstacles: the probe proves
	// infeasibility.
	c := &clip.Clip{
		Name: "walled", Tech: "t",
		NX: 3, NY: 3, NZ: 2, MinLayer: 1,
		Obstacles: []clip.AccessPoint{
			{X: 1, Y: 0, Z: 1}, {X: 1, Y: 1, Z: 1}, {X: 1, Y: 2, Z: 1},
		},
		Nets: []clip.Net{{Name: "a", Pins: []clip.Pin{
			{Name: "s", APs: []clip.AccessPoint{{X: 0, Y: 0, Z: 1}}},
			{Name: "t", APs: []clip.AccessPoint{{X: 2, Y: 0, Z: 1}}},
		}}},
	}
	g := mustGraph(t, c, rgraph.Options{})
	h := SolveHeuristic(g, HeuristicOptions{})
	if h.Feasible || !h.Proven {
		t.Fatalf("expected proven infeasible, got %+v", h)
	}
	b, err := SolveBnB(g, BnBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Feasible || !b.Proven {
		t.Fatalf("BnB should agree: %+v", b)
	}
}
