package core

import (
	"sort"
	"time"

	"optrouter/internal/drc"
	"optrouter/internal/rgraph"
)

// HeuristicOptions tunes the negotiated-congestion heuristic router.
type HeuristicOptions struct {
	// MaxIters bounds rip-up-and-reroute passes (default 48).
	MaxIters int
	// PresentPenalty is the initial penalty for using a resource already
	// claimed by another net (default 50); it grows each pass.
	PresentPenalty int64
	// HistoryStep is the history-cost increment for conflicted resources
	// (default 4).
	HistoryStep int64
	// Arena, if non-nil, supplies the Steiner kernel's reusable storage
	// (SolveBnB shares its arena with the seeding heuristic). Nil allocates
	// a private arena.
	Arena *SteinerArena
}

func (o HeuristicOptions) withDefaults() HeuristicOptions {
	if o.MaxIters == 0 {
		o.MaxIters = 48
	}
	if o.PresentPenalty == 0 {
		o.PresentPenalty = 50
	}
	if o.HistoryStep == 0 {
		o.HistoryStep = 4
	}
	return o
}

// SolveHeuristic routes the clip with a PathFinder-style sequential router:
// per-net exact Steiner trees under growing congestion penalties, with
// design-rule violations (from the independent DRC) folded into history
// costs. It is this repository's stand-in for the commercial detailed router
// in the paper's validation study (Section 4.2, footnote 6).
//
// The result is DRC-clean when Feasible; optimality is NOT guaranteed
// (Proven is false), except that a proven-infeasible verdict (no per-net
// path exists at all) sets Proven.
func SolveHeuristic(g *rgraph.Graph, opt HeuristicOptions) *Solution {
	start := time.Now()
	opt = opt.withDefaults()
	own := newOwnership(g)
	nNets := len(g.Clip.Nets)

	arena := opt.Arena
	if arena == nil {
		arena = NewSteinerArena()
	}
	ctxs := make([]*steinerCtx, nNets)
	for k := 0; k < nNets; k++ {
		ctxs[k] = newSteinerCtx(g, own, k, arena)
	}

	// Unconstrained feasibility probe: if some net cannot route alone, the
	// clip is infeasible for every solver. Solver results are arena-owned and
	// routes persist across solves, so each is copied on store.
	routes := make([][]int32, nNets)
	for k := 0; k < nNets; k++ {
		arcs, _, ok := steinerTree(ctxs[k])
		if !ok {
			return &Solution{Feasible: false, Proven: true, Runtime: time.Since(start)}
		}
		routes[k] = append([]int32(nil), arcs...)
	}

	history := make([]int64, len(g.Arcs))
	penalty := make([]int64, len(g.Arcs))

	// Net ordering: larger nets first (harder to detour late).
	order := make([]int, nNets)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Clip.Nets[order[a]].NumSinks() > g.Clip.Nets[order[b]].NumSinks()
	})

	for iter := 0; iter < opt.MaxIters; iter++ {
		viols := drc.Check(g, routes)
		if len(viols) == 0 {
			sol := &Solution{Feasible: true, NetArcs: routes, Runtime: time.Since(start)}
			summarize(g, sol)
			return sol
		}
		// Raise history on conflicted resources.
		for _, v := range viols {
			for _, a := range violationArcs(g, v) {
				history[a] += opt.HistoryStep
				history[g.Pair[a]] += opt.HistoryStep
			}
		}
		present := opt.PresentPenalty + int64(iter)*20

		// Re-route each net against the rest.
		for _, k := range order {
			// Present congestion from other nets: arcs, their pairs, and
			// arcs entering vertices other nets touch.
			for i := range penalty {
				penalty[i] = history[i]
			}
			for k2 := 0; k2 < nNets; k2++ {
				if k2 == k {
					continue
				}
				for _, a := range routes[k2] {
					penalty[a] += present
					penalty[g.Pair[a]] += present
					arc := g.Arcs[a]
					for _, v := range []int32{arc.From, arc.To} {
						if !g.IsGrid(v) {
							continue
						}
						for _, in := range g.In[v] {
							penalty[in] += present / 2
						}
					}
					// Via adjacency pressure.
					if s := arc.Site; s >= 0 {
						for _, o := range g.SiteAdj[s] {
							for _, oa := range g.Sites[o].Arcs {
								penalty[oa] += present
							}
						}
					}
				}
			}
			ctxs[k].penalty = penalty
			arcs, _, ok := steinerTree(ctxs[k])
			ctxs[k].penalty = nil
			if ok {
				routes[k] = append(routes[k][:0], arcs...)
			}
		}
	}

	// One final check: the last pass may have converged.
	if len(drc.Check(g, routes)) == 0 {
		sol := &Solution{Feasible: true, NetArcs: routes, Runtime: time.Since(start)}
		summarize(g, sol)
		return sol
	}
	return &Solution{Feasible: false, Proven: false, Runtime: time.Since(start)}
}

// violationArcs maps a violation to the arcs whose cost should rise.
func violationArcs(g *rgraph.Graph, v drc.Violation) []int32 {
	var out []int32
	out = append(out, v.Arcs...)
	for _, vert := range v.Verts {
		if int(vert) < len(g.In) {
			out = append(out, g.In[vert]...)
		}
	}
	for _, s := range v.Sites {
		out = append(out, g.Sites[s].Arcs...)
	}
	for _, e := range v.EOLs {
		if e.WitnessVia >= 0 {
			out = append(out, e.WitnessVia)
		}
		if e.WitnessWire >= 0 {
			out = append(out, e.WitnessWire)
		}
	}
	return out
}
