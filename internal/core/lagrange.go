package core

import (
	"optrouter/internal/rgraph"
)

// lagrangian strengthens the per-net-independent lower bound by dualizing
// the shared-resource capacity constraints (arc pairs and grid vertices):
// for any nonnegative penalty vector lambda,
//
//	L(lambda) = sum_k min-cost-Steiner_k(c + lambda) - sum_r lambda_r
//
// is a valid lower bound on the optimal joint routing cost, because every
// feasible solution uses each resource at most once and so pays at most
// sum_r lambda_r of the added penalties. Penalties evolve globally by
// subgradient steps (raise overused resources, decay unused ones); since
// L(lambda) is valid for every lambda >= 0 under the node's bans, the drift
// across nodes never invalidates a bound.
type lagrangian struct {
	g *rgraph.Graph
	// lambdaArc[canonical arc id] and lambdaVert[grid vertex] are the
	// current penalties; kept sparse.
	lambdaArc  map[int32]int64
	lambdaVert map[int32]int64
	penalty    []int64 // per-arc scratch, rebuilt per evaluation
}

func newLagrangian(g *rgraph.Graph) *lagrangian {
	return &lagrangian{
		g:          g,
		lambdaArc:  map[int32]int64{},
		lambdaVert: map[int32]int64{},
		penalty:    make([]int64, len(g.Arcs)),
	}
}

// reset clears the penalty state, making the next bound call a pure function
// of the graph and the applied bans. The parallel tree search resets before
// every evaluation: worker-local lambda drift would otherwise make pruning
// decisions depend on which worker evaluated a node, and the engine's
// cross-worker-count determinism guarantee rests on a deterministic tree.
func (l *lagrangian) reset() {
	clear(l.lambdaArc)
	clear(l.lambdaVert)
}

// canonArc maps a directed arc to its undirected resource id.
func (l *lagrangian) canonArc(a int32) int32 {
	if p := l.g.Pair[a]; p < a {
		return p
	}
	return a
}

// totalLambda sums all active penalties (the constant term of L).
func (l *lagrangian) totalLambda() int64 {
	t := int64(0)
	for _, v := range l.lambdaArc {
		t += v
	}
	for _, v := range l.lambdaVert {
		t += v
	}
	return t
}

// loadPenalties fills the per-arc scratch from the sparse maps.
func (l *lagrangian) loadPenalties() {
	for i := range l.penalty {
		l.penalty[i] = 0
	}
	for ca, v := range l.lambdaArc {
		l.penalty[ca] += v
		l.penalty[l.g.Pair[ca]] += v
	}
	for vert, v := range l.lambdaVert {
		for _, in := range l.g.In[vert] {
			l.penalty[in] += v
		}
	}
}

// bound evaluates L(lambda) under the given per-net contexts (bans applied
// by the caller) and performs `rounds` subgradient updates. It returns the
// best bound seen; a negative return means some net was unroutable (the
// node is infeasible regardless of penalties).
func (l *lagrangian) bound(ctxs []*steinerCtx, rounds int) int64 {
	best := int64(-1)
	for round := 0; round < rounds; round++ {
		l.loadPenalties()
		sum := int64(0)
		useArc := map[int32]int{}
		useVert := map[int32]int{}
		for _, ctx := range ctxs {
			ctx.penalty = l.penalty
			arcs, cost, ok := steinerTree(ctx)
			ctx.penalty = nil
			if !ok {
				return -2 // infeasible independent subproblem
			}
			sum += cost
			seenV := map[int32]bool{}
			for _, a := range arcs {
				useArc[l.canonArc(a)]++
				to := l.g.Arcs[a].To
				if l.g.IsGrid(to) && !seenV[to] {
					seenV[to] = true
					useVert[to]++
				}
			}
		}
		lb := sum - l.totalLambda()
		if lb > best {
			best = lb
		}

		// Subgradient step: raise overused resources, decay slack ones.
		for r, n := range useArc {
			if n >= 2 {
				l.lambdaArc[r] += int64(n - 1)
			}
		}
		for r := range l.lambdaArc {
			if useArc[r] <= 1 {
				l.lambdaArc[r]--
				if l.lambdaArc[r] <= 0 {
					delete(l.lambdaArc, r)
				}
			}
		}
		for v, n := range useVert {
			if n >= 2 {
				l.lambdaVert[v] += int64(n - 1)
			}
		}
		for v := range l.lambdaVert {
			if useVert[v] <= 1 {
				l.lambdaVert[v]--
				if l.lambdaVert[v] <= 0 {
					delete(l.lambdaVert, v)
				}
			}
		}
	}
	return best
}
