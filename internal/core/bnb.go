package core

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"time"

	"optrouter/internal/drc"
	"optrouter/internal/lp"
	"optrouter/internal/obs"
	"optrouter/internal/rgraph"
	"optrouter/internal/xchg"
)

// BnBOptions tunes the conflict-driven combinatorial branch-and-bound.
type BnBOptions struct {
	// MaxNodes bounds explored nodes (default 200000).
	MaxNodes int
	// TimeLimit stops the search (0 = none).
	TimeLimit time.Duration
	// Ctx, if non-nil, cancels the search between nodes (termination
	// "cancelled", proven false). It is the parallel scheduler's handle for
	// aborting a sweep; TimeLimit remains the per-solve wall budget.
	Ctx context.Context
	// NoHeuristicSeed disables the initial heuristic incumbent (used by
	// tests that want the pure search).
	NoHeuristicSeed bool
	// LP tunes the MILP engine's LP subsolver (basis engine, pricing rule,
	// presolve mode) when this options struct drives a portfolio race
	// (SolvePortfolio); the combinatorial SolveBnB itself ignores it.
	LP lp.Options
	// Progress, if non-nil, is invoked every ProgressEvery explored nodes
	// and on every incumbent update with a live view of the search.
	Progress func(BnBProgress)
	// ProgressEvery is the node interval between Progress calls (default 256).
	ProgressEvery int
	// Tracer, if non-nil, receives a span for the solve with incumbent and
	// termination events (see package obs). Nil disables tracing.
	Tracer *obs.Tracer
	// Flight configures per-node search-event recording onto the solve span
	// (see obs.FlightOptions). Disabled by default; it needs a Tracer to have
	// anywhere to record to.
	Flight obs.FlightOptions
	// Arena, if non-nil, supplies the Steiner kernel's reusable storage.
	// Sharing one arena across sequential solves on related graphs (the
	// eleven rule configurations of a clip in a sweep) amortizes the solver's
	// working set; nil allocates a private arena. Arenas are not safe for
	// concurrent use, so the parallel tree search (Par > 0) ignores this and
	// allocates one private arena per worker.
	Arena *SteinerArena

	// Par > 0 routes the solve through the deterministic round-parallel tree
	// search with Par workers (see parbnb.go): open nodes are distributed
	// over an internal/sched pool in fixed-width rounds whose results fold
	// back serially, so the answer — objective, proof status and the routes
	// themselves — is identical for every Par value, including Par=1.
	// 0 keeps the classic serial best-first engine.
	Par int
	// Seed salts the parallel engine's deterministic node tie-break key.
	// Two solves with the same Seed explore identically for any Par; changing
	// the Seed permutes tie-broken siblings (a diversification knob).
	Seed int64
	// Exchange, if non-nil, connects the solve to a portfolio race (see
	// SolvePortfolio): foreign incumbents tighten the pruning cutoff, local
	// incumbents and bounds are published, and the solve terminates early
	// when the race is decided. With an Exchange attached, Proven=true means
	// the joint search completed — the returned solution is optimal only if
	// its cost equals the exchange incumbent (SolvePortfolio composes this).
	Exchange *xchg.Exchange
}

func (o BnBOptions) withDefaults() BnBOptions {
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.ProgressEvery == 0 {
		o.ProgressEvery = 256
	}
	return o
}

// BnBProgress is the live view handed to BnBOptions.Progress.
type BnBProgress struct {
	Nodes     int           // nodes explored so far
	Open      int           // nodes still in the priority queue
	Incumbent int64         // best routing cost found (-1 if none yet)
	Bound     int64         // proven global lower bound (-1 before root)
	Elapsed   time.Duration // since the start of the solve
}

// CDC-BnB phase names used in SolveStats.Phases. Together they partition a
// solve's wall time: the attribution clock is always open on exactly one of
// them from the start of SolveBnB until it returns.
const (
	PhaseSetup      = "setup"      // per-net Steiner context construction
	PhaseSeed       = "seed"       // initial heuristic incumbent
	PhaseSteiner    = "steiner"    // per-net Steiner lower-bound solves
	PhaseDRC        = "drc"        // design-rule separation (EOL/via checks)
	PhaseLagrangian = "lagrangian" // dual-bound strengthening rounds
	PhaseDive       = "dive"       // primal dive-repair heuristic
	PhaseBranch     = "branch"     // strong-branching lookahead + child push
	PhaseSearch     = "search"     // node pop, pruning, bookkeeping
)

// banKey identifies one (net, arc) forbiddance.
type banKey struct {
	net int32
	arc int32
}

// splitmix64 is the finalizing mix of the SplitMix64 generator — cheap, and
// enough avalanche that summing mixed values fingerprints a set well.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// banFingerprint hashes the subset of bans belonging to net k without
// materializing a key: the per-arc mixes are combined by addition, so the
// fingerprint is independent of Go's randomized map iteration order. Returns
// the hash and the subset size.
func banFingerprint(k int, bans map[banKey]bool) (uint64, int) {
	h := uint64(0)
	cnt := 0
	for b := range bans {
		if int(b.net) == k {
			h += splitmix64(uint64(uint32(b.arc)) + 1)
			cnt++
		}
	}
	return h, cnt
}

// bnbNode is a search node: its bans are the chain to the root.
type bnbNode struct {
	parent *bnbNode
	bans   []banKey // bans added at this node
	lb     int64    // lower bound computed at creation (parent-estimate)
	depth  int
}

// cachedRoute is one per-net route memo entry of SolveBnB's route cache.
type cachedRoute struct {
	ids  []int32 // the net's banned arc ids (set-equality verification)
	arcs []int32
	cost int64
	ok   bool
}

// lookupRoute scans the same-fingerprint cache entries for one whose ban-id
// set equals net k's subset of bans (known to have size cnt). Entries are
// verified by size and membership rather than trusted on hash equality, so a
// fingerprint collision degrades to a cache miss, never a wrong route (see
// TestRouteCacheCollisionSafety).
func lookupRoute(entries []cachedRoute, k, cnt int, bans map[banKey]bool) *cachedRoute {
	for i := range entries {
		e := &entries[i]
		if len(e.ids) != cnt {
			continue
		}
		match := true
		for _, id := range e.ids {
			if !bans[banKey{net: int32(k), arc: id}] {
				match = false
				break
			}
		}
		if match {
			return e
		}
	}
	return nil
}

func (n *bnbNode) allBans(buf map[banKey]bool) map[banKey]bool {
	if buf == nil {
		buf = map[banKey]bool{}
	} else {
		for k := range buf {
			delete(buf, k)
		}
	}
	for cur := n; cur != nil; cur = cur.parent {
		for _, b := range cur.bans {
			buf[b] = true
		}
	}
	return buf
}

// nodePQ is a min-heap on lower bound (ties: deeper first to reach leaves).
type nodePQ []*bnbNode

func (p nodePQ) Len() int { return len(p) }
func (p nodePQ) Less(i, j int) bool {
	if p[i].lb != p[j].lb {
		return p[i].lb < p[j].lb
	}
	return p[i].depth > p[j].depth
}
func (p nodePQ) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *nodePQ) Push(x interface{}) { *p = append(*p, x.(*bnbNode)) }
func (p *nodePQ) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// SolveBnB computes a provably optimal routing with the conflict-driven
// combinatorial branch-and-bound (CDC-BnB): per-net exact minimum Steiner
// arborescences provide admissible lower bounds; when the union of per-net
// optima violates a design rule, children are generated by forbidding, for
// one involved net, one arc of the realized conflict — a cover of all
// feasible solutions, so optimality is preserved (see DESIGN.md).
func SolveBnB(g *rgraph.Graph, opt BnBOptions) (*Solution, error) {
	if opt.Par > 0 {
		return solveParBnB(g, opt)
	}
	start := time.Now()
	opt = opt.withDefaults()
	ex := opt.Exchange
	own := newOwnership(g)
	nNets := len(g.Clip.Nets)
	arena := opt.Arena
	if arena == nil {
		arena = NewSteinerArena()
	}
	arena.resetBans() // recycle ban vectors from a previous solve on this arena

	var stats SolveStats
	gst := g.Stats()
	span := opt.Tracer.Start("bnb.solve",
		obs.A("clip", g.Clip.Name),
		obs.A("nets", nNets),
		obs.A("verts", gst.Verts),
		obs.A("arcs", gst.Arcs))

	// Wall-time attribution: the clock is open on exactly one phase from here
	// until the solve returns, so stats.Phases partitions the elapsed time.
	clock := obs.NewPhaseClock()
	clock.Enter(PhaseSeed)

	var best *Solution
	var bestCost int64 = 1 << 60
	if !opt.NoHeuristicSeed {
		hspan := span.Child("heuristic.seed")
		h := SolveHeuristic(g, HeuristicOptions{Arena: arena})
		hspan.SetAttr("feasible", h.Feasible)
		hspan.End()
		if h.Feasible {
			best = h
			bestCost = int64(h.Cost)
			if ex.OfferIncumbent(bestCost) {
				stats.IncumbentExchanges++
			}
			stats.Incumbents++
			stats.BoundTrace = append(stats.BoundTrace, BoundSample{
				ElapsedMS: msSince(start), Bound: -1, Incumbent: bestCost,
			})
			span.Event("incumbent", obs.A("cost", h.Cost), obs.A("source", "heuristic-seed"))
		} else if h.Proven {
			h.Runtime = time.Since(start)
			stats.Elapsed = h.Runtime
			stats.Termination = "infeasible"
			clock.Stop()
			stats.Phases = clock.Breakdown()
			stats.BoundTrace = append(stats.BoundTrace, BoundSample{
				ElapsedMS: msSince(start), Bound: -1, Incumbent: -1,
			})
			h.Stats = stats
			span.SetAttr("termination", "infeasible")
			span.SetAttr("phases_ms", stats.Phases.MS())
			span.End()
			return h, nil // proven infeasible by the probe
		}
	}

	clock.Enter(PhaseSetup)
	ctxs := make([]*steinerCtx, nNets)
	baseBans := make([][]bool, nNets)
	for k := 0; k < nNets; k++ {
		ctxs[k] = newSteinerCtx(g, own, k, arena)
		baseBans[k] = append([]bool(nil), ctxs[k].banned...)
	}

	// Per-net route memoization: most branches ban arcs for a single net,
	// so sibling nodes share nearly all per-net Steiner solutions. Entries
	// are keyed by an order-independent fingerprint of the net's ban set —
	// probing allocates nothing — with same-hash entries verified by
	// lookupRoute, so a collision degrades to a miss, never a wrong route.
	caches := make([]map[uint64][]cachedRoute, nNets)
	for k := range caches {
		caches[k] = map[uint64][]cachedRoute{}
	}

	// checkDRC wraps the rule checker with count/time accounting. Swap/Enter
	// re-attributes the nested region to the DRC phase no matter which phase
	// (search, dive, branch) drove the check.
	checkDRC := func(routes [][]int32) []drc.Violation {
		prev := clock.Swap(PhaseDRC)
		t0 := time.Now()
		viols := drc.Check(g, routes)
		stats.DRCChecks++
		stats.DRCTime += time.Since(t0)
		clock.Enter(prev)
		return viols
	}

	// evaluate solves all per-net Steiner problems under the node's bans.
	evaluate := func(bans map[banKey]bool) (routes [][]int32, lb int64, feasible bool) {
		prev := clock.Swap(PhaseSteiner)
		defer func() { clock.Enter(prev) }()
		routes = make([][]int32, nNets)
		for k := 0; k < nNets; k++ {
			h, cnt := banFingerprint(k, bans)
			cr := lookupRoute(caches[k][h], k, cnt, bans)
			if cr != nil {
				stats.SteinerCacheHits++
			} else {
				copy(ctxs[k].banned, baseBans[k])
				ids := make([]int32, 0, cnt)
				for b := range bans {
					if int(b.net) == k {
						ctxs[k].banned[b.arc] = true
						ids = append(ids, b.arc)
					}
				}
				arcs, cost, ok := steinerTree(ctxs[k])
				// The solver's arc buffer is arena-owned; the cache outlives
				// the next solve, so it keeps a copy.
				ent := cachedRoute{ids: ids, cost: cost, ok: ok}
				if ok {
					ent.arcs = append([]int32(nil), arcs...)
				}
				caches[k][h] = append(caches[k][h], ent)
				cr = &caches[k][h][len(caches[k][h])-1]
			}
			if !cr.ok {
				return nil, 0, false
			}
			routes[k] = cr.arcs
			lb += cr.cost
		}
		return routes, lb, true
	}

	// diveRepair greedily resolves violations from a node's routes by
	// applying, at each conflict, the child ban whose re-route is cheapest.
	// It is a primal heuristic only — bans explored here are not removed
	// from the tree — but it supplies early incumbents that best-first
	// search needs for pruning, especially under SADP rules where the
	// standalone heuristic router often fails.
	// trialAdded is the rollback journal for speculative ban applications:
	// child evaluations mutate the live ban map in place and undo afterwards
	// instead of copying the whole map per trial.
	var trialAdded []banKey
	tryBans := func(bans map[banKey]bool, childBans []banKey) (int64, bool) {
		trialAdded = trialAdded[:0]
		for _, b := range childBans {
			if !bans[b] {
				bans[b] = true
				trialAdded = append(trialAdded, b)
			}
		}
		_, c, ok := evaluate(bans)
		for _, b := range trialAdded {
			delete(bans, b)
		}
		return c, ok
	}

	diveRepair := func(bans map[banKey]bool, cutoff int64) (int64, [][]int32) {
		local := map[banKey]bool{}
		for k, v := range bans {
			local[k] = v
		}
		for step := 0; step < 24; step++ {
			routes, cost, feasible := evaluate(local)
			if !feasible || cost >= cutoff {
				return -1, nil // infeasible or already dominated
			}
			viols := checkDRC(routes)
			if len(viols) == 0 {
				return cost, routes
			}
			v := pickViolation(viols)
			bestCost := int64(-1)
			var bestBans []banKey
			for _, childBans := range branchBans(g, v, routes) {
				if len(childBans) == 0 {
					continue
				}
				c, ok := tryBans(local, childBans)
				if !ok {
					continue
				}
				if bestCost < 0 || c < bestCost {
					bestCost = c
					bestBans = childBans
				}
			}
			if bestBans == nil {
				return -1, nil
			}
			for _, b := range bestBans {
				local[b] = true
			}
		}
		return -1, nil
	}

	// applyBans loads a node's forbiddances into every net context (used by
	// the Lagrangian bound, which cannot go through the route cache).
	applyBans := func(bans map[banKey]bool) {
		for k := 0; k < nNets; k++ {
			copy(ctxs[k].banned, baseBans[k])
		}
		for b := range bans {
			ctxs[b.net].banned[b.arc] = true
		}
	}
	lag := newLagrangian(g)

	root := &bnbNode{}
	pq := &nodePQ{root}
	heap.Init(pq)
	nodes := 0
	sinceProgress := 0 // nodes since the last incumbent improvement or prune
	banBuf := map[banKey]bool{}
	proven := true
	curBound := int64(-1) // global lower bound (lb of last popped node)
	curDepth := 0         // depth of the node being processed

	// nodeEvent feeds the flight recorder one structured record per search
	// node: the action taken (cutoff / infeasible / dominated / solved /
	// lagrangian / fathom / branch), the node's position (n, d), its lower
	// bound and the global bound/incumbent state at that moment. Every attr
	// is integral, so records marshal unconditionally. With recording off
	// (the default) fl is nil and each call costs one comparison.
	fl := obs.NewFlight(span, opt.Flight)
	nodeEvent := func(act string, depth int, lb int64, extra ...obs.Attr) {
		if fl == nil {
			return
		}
		attrs := make([]obs.Attr, 0, 6+len(extra))
		attrs = append(attrs,
			obs.A("act", act), obs.A("n", nodes), obs.A("d", depth), obs.A("lb", lb))
		if curBound >= 0 {
			attrs = append(attrs, obs.A("bnd", curBound))
		}
		if best != nil {
			attrs = append(attrs, obs.A("inc", bestCost))
		}
		fl.Event("node", append(attrs, extra...)...)
	}

	sample := func() {
		if len(stats.BoundTrace) >= maxTraceSamples {
			return
		}
		inc := int64(-1)
		if best != nil {
			inc = bestCost
		}
		stats.BoundTrace = append(stats.BoundTrace, BoundSample{
			ElapsedMS: msSince(start), Nodes: nodes, Depth: curDepth,
			Open: pq.Len(), Bound: curBound, Incumbent: inc,
		})
	}

	reportProgress := func() {
		if opt.Progress == nil {
			return
		}
		inc := int64(-1)
		if best != nil {
			inc = bestCost
		}
		opt.Progress(BnBProgress{
			Nodes: nodes, Open: pq.Len(), Incumbent: inc,
			Bound: curBound, Elapsed: time.Since(start),
		})
	}

	clock.Enter(PhaseSearch)
	for pq.Len() > 0 {
		if nodes >= opt.MaxNodes {
			proven = false
			stats.Termination = "node-limit"
			break
		}
		if opt.TimeLimit > 0 && time.Since(start) > opt.TimeLimit {
			proven = false
			stats.Termination = "time-limit"
			break
		}
		if opt.Ctx != nil && opt.Ctx.Err() != nil {
			proven = false
			stats.Termination = "cancelled"
			break
		}
		if ex.Decided() {
			// The portfolio race is settled: the exchange bound reached the
			// exchange incumbent, so that incumbent is jointly proven optimal.
			// This solve's own result is the optimum only if it holds it.
			inc, _ := ex.Incumbent()
			proven = best != nil && bestCost == inc
			stats.Termination = "decided"
			break
		}
		// Effective pruning cutoff: the local incumbent, tightened by any
		// foreign incumbent published on the portfolio exchange. Pruning
		// against a foreign incumbent keeps the search exact: a completed
		// search then proves no solution cheaper than the exchange incumbent
		// exists, which is exactly the proof SolvePortfolio composes.
		cut := bestCost
		if f, ok := ex.Incumbent(); ok && f < cut {
			cut = f
		}
		nd := heap.Pop(pq).(*bnbNode)
		if nd.lb >= cut {
			// Best-first: every remaining node is at least as bad.
			nodeEvent("cutoff", nd.depth, nd.lb)
			break
		}
		nodes++
		curDepth = nd.depth
		if nd.depth > stats.MaxDepth {
			stats.MaxDepth = nd.depth
		}
		if nd.lb > curBound {
			curBound = nd.lb
			// Publish the global lower bound: explored and pruned subtrees
			// prove no solution below min(pq-min, cutoff) exists.
			if b := min(curBound, cut); b > 0 {
				ex.OfferBound(b)
			}
			// Leave headroom so incumbent/termination samples still fit when
			// bound improvements alone would exhaust the trace cap.
			if len(stats.BoundTrace) < maxTraceSamples-64 {
				sample()
			}
		}
		if nodes%opt.ProgressEvery == 0 {
			reportProgress()
		}
		banBuf = nd.allBans(banBuf)
		routes, lb, feasible := evaluate(banBuf)
		if !feasible {
			nodeEvent("infeasible", nd.depth, nd.lb)
			continue
		}
		if lb >= cut {
			nodeEvent("dominated", nd.depth, lb)
			continue
		}

		viols := checkDRC(routes)
		if len(viols) == 0 {
			// The per-net optima are jointly legal: node solved exactly.
			if lb < bestCost {
				bestCost = lb
				best = &Solution{Feasible: true, NetArcs: routes, Proven: true}
				summarize(g, best)
				sinceProgress = 0
				if ex.OfferIncumbent(bestCost) {
					stats.IncumbentExchanges++
				}
				stats.Incumbents++
				sample()
				span.Event("incumbent", obs.A("cost", best.Cost), obs.A("node", nodes))
				reportProgress()
			}
			nodeEvent("solved", nd.depth, lb)
			continue
		}

		// Lagrangian strengthening: dualized capacity penalties often close
		// the gap between the independent bound and the incumbent, pruning
		// without branching. It costs one uncached Steiner pass per net per
		// round, so it only runs once the plain search stalls.
		sinceProgress++
		if (best != nil || cut < bestCost) && lb < cut && sinceProgress > 24 {
			clock.Enter(PhaseLagrangian)
			applyBans(banBuf)
			stats.LagrangianRounds++
			lagLB := lag.bound(ctxs, 2)
			clock.Enter(PhaseSearch)
			if lagLB == -2 || lagLB >= cut {
				sinceProgress = 0
				nodeEvent("lagrangian", nd.depth, lb, obs.A("lag_lb", lagLB))
				continue
			}
		}

		// Periodic primal dive for incumbents (always at the root, then
		// sparsely — each dive costs many Steiner solves).
		if nodes == 1 || nodes%512 == 0 {
			clock.Enter(PhaseDive)
			stats.Dives++
			if c, r := diveRepair(banBuf, cut); c >= 0 && c < bestCost {
				bestCost = c
				best = &Solution{Feasible: true, NetArcs: r}
				summarize(g, best)
				if ex.OfferIncumbent(bestCost) {
					stats.IncumbentExchanges++
				}
				stats.Incumbents++
				sample()
				span.Event("incumbent", obs.A("cost", best.Cost), obs.A("node", nodes), obs.A("source", "dive"))
				reportProgress()
			}
			clock.Enter(PhaseSearch)
		}

		// Strong branching: among the highest-ranked violations, pick the
		// one whose worst (minimum-bound) feasible child is largest — it
		// tightens the subtree the most. Children evaluations are cached,
		// so the lookahead is amortized when a child is later popped.
		clock.Enter(PhaseBranch)
		cands := candidateViolations(viols, 3)
		type childEval struct {
			bans []banKey
			lb   int64
			ok   bool
		}
		bestScore := int64(-1)
		var bestChildren []childEval
		var bestKind string // violation kind branched on (flight-recorder attr)
		for _, v := range cands {
			sets := branchBans(g, v, routes)
			evals := make([]childEval, 0, len(sets))
			minLB := int64(1) << 60
			anyFeasible := false
			for _, childBans := range sets {
				child := childEval{bans: childBans}
				if clb, ok := tryBans(banBuf, childBans); ok && clb < cut {
					child.lb = clb
					child.ok = true
					anyFeasible = true
					if clb < minLB {
						minLB = clb
					}
				}
				evals = append(evals, child)
			}
			if !anyFeasible {
				// Every child of this violation is infeasible or dominated:
				// the node itself is settled.
				bestChildren = nil
				bestScore = 1 << 60
				bestKind = v.Kind.String()
				break
			}
			if minLB > bestScore {
				bestScore = minLB
				bestChildren = evals
				bestKind = v.Kind.String()
			}
		}
		pushed := 0
		for _, ce := range bestChildren {
			if !ce.ok {
				continue
			}
			stats.BansGenerated += len(ce.bans)
			heap.Push(pq, &bnbNode{parent: nd, bans: ce.bans, lb: ce.lb, depth: nd.depth + 1})
			pushed++
		}
		if pushed == 0 {
			nodeEvent("fathom", nd.depth, lb, obs.A("kind", bestKind))
		} else {
			nodeEvent("branch", nd.depth, lb, obs.A("kind", bestKind), obs.A("kids", pushed))
		}
		clock.Enter(PhaseSearch)
	}

	sol := best
	if sol == nil {
		sol = &Solution{Feasible: false}
	}
	// A completed search proves optimality of whatever incumbent remains,
	// including a heuristic-seeded one that was never improved.
	sol.Proven = proven
	sol.Nodes = nodes
	sol.Runtime = time.Since(start)

	stats.Nodes = nodes
	for k := 0; k < nNets; k++ {
		stats.SteinerSolves += ctxs[k].solves
		stats.SteinerCells += ctxs[k].cells
	}
	stats.Elapsed = sol.Runtime
	if stats.Termination == "" {
		if sol.Feasible {
			stats.Termination = "optimal"
		} else {
			stats.Termination = "infeasible"
		}
	}
	clock.Stop()
	stats.Phases = clock.Breakdown()
	// Terminal trace sample: overwrite the newest entry if the cap is hit so
	// the trace always ends with the final bound/incumbent state.
	if len(stats.BoundTrace) >= maxTraceSamples {
		stats.BoundTrace = stats.BoundTrace[:maxTraceSamples-1]
	}
	sample()
	sol.Stats = stats
	reportProgress()
	span.SetAttr("nodes", nodes)
	span.SetAttr("steiner_solves", stats.SteinerSolves)
	span.SetAttr("drc_checks", stats.DRCChecks)
	span.SetAttr("feasible", sol.Feasible)
	span.SetAttr("proven", sol.Proven)
	span.SetAttr("termination", stats.Termination)
	// The phase breakdown rides on the span so trace consumers (traceview)
	// can attribute solve wall time without access to SolveStats.
	span.SetAttr("phases_ms", stats.Phases.MS())
	fl.Finish()
	span.End()
	return sol, nil
}

func violationRank(v drc.Violation) int {
	switch v.Kind {
	case drc.ArcConflict:
		return 0
	case drc.VertexConflict:
		return 1
	case drc.ViaShapeBlock:
		return 2
	case drc.ViaAdjacency:
		return 3
	case drc.SADPEOL:
		return 4
	default:
		return 5
	}
}

// pickViolation selects a deterministic violation to branch on: prefer hard
// structural conflicts (arc/vertex) before rule conflicts, then lowest ids.
func pickViolation(viols []drc.Violation) drc.Violation {
	best := viols[0]
	for _, v := range viols[1:] {
		if violationRank(v) < violationRank(best) {
			best = v
		}
	}
	return best
}

// candidateViolations returns up to n violations in rank order for strong
// branching.
func candidateViolations(viols []drc.Violation, n int) []drc.Violation {
	sorted := append([]drc.Violation(nil), viols...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return violationRank(sorted[i]) < violationRank(sorted[j])
	})
	if len(sorted) > n {
		sorted = sorted[:n]
	}
	return sorted
}

// branchBans generates the children's forbiddance sets for a violation.
// Every feasible solution of the parent remains feasible in at least one
// child (the sets cover ¬violation), which keeps the search exact.
func branchBans(g *rgraph.Graph, v drc.Violation, routes [][]int32) [][]banKey {
	switch v.Kind {
	case drc.ArcConflict:
		a := v.Arcs[0]
		pair := g.Pair[a]
		k1, k2 := int32(v.Nets[0]), int32(v.Nets[1])
		return [][]banKey{
			{{k1, a}, {k1, pair}},
			{{k2, a}, {k2, pair}},
		}
	case drc.VertexConflict:
		k1, k2 := int32(v.Nets[0]), int32(v.Nets[1])
		if k1 == k2 && len(v.Arcs) == 2 {
			// Same-net double entry: a legal routing uses at most one of
			// the two entering arcs.
			return [][]banKey{
				{{k1, v.Arcs[0]}},
				{{k1, v.Arcs[1]}},
			}
		}
		vert := v.Verts[0]
		return [][]banKey{
			banVertex(g, k1, vert),
			banVertex(g, k2, vert),
		}
	case drc.ViaAdjacency:
		s1, s2 := v.Sites[0], v.Sites[1]
		return [][]banKey{
			banSiteForAll(g, s1, len(routes)),
			banSiteForAll(g, s2, len(routes)),
		}
	case drc.ViaShapeBlock:
		s := v.Sites[0]
		intruder := int32(v.Nets[len(v.Nets)-1])
		fv := v.Verts[0]
		siteArc := map[int32]bool{}
		for _, a := range g.Sites[s].Arcs {
			siteArc[a] = true
		}
		var intruderBan []banKey
		for _, a := range g.In[fv] {
			if !siteArc[a] {
				intruderBan = append(intruderBan, banKey{intruder, a}, banKey{intruder, g.Pair[a]})
			}
		}
		return [][]banKey{
			banSiteForAll(g, s, len(routes)),
			intruderBan,
		}
	case drc.SADPEOL:
		e1, e2 := v.EOLs[0], v.EOLs[1]
		return [][]banKey{
			{{int32(e1.Net), e1.WitnessWire}},
			{{int32(e1.Net), e1.WitnessVia}},
			{{int32(e2.Net), e2.WitnessWire}},
			{{int32(e2.Net), e2.WitnessVia}},
		}
	default:
		// Disconnected should be impossible for Steiner-built routes.
		panic(fmt.Sprintf("core: unexpected violation kind %v", v.Kind))
	}
}

func banVertex(g *rgraph.Graph, k int32, vert int32) []banKey {
	var out []banKey
	seen := map[int32]bool{}
	add := func(a int32) {
		if !seen[a] {
			seen[a] = true
			out = append(out, banKey{k, a})
		}
	}
	for _, a := range g.In[vert] {
		add(a)
		add(g.Pair[a])
	}
	for _, a := range g.Out[vert] {
		add(a)
		add(g.Pair[a])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].arc < out[j].arc })
	return out
}

func banSiteForAll(g *rgraph.Graph, s int32, nNets int) []banKey {
	var out []banKey
	for k := 0; k < nNets; k++ {
		for _, a := range g.Sites[s].Arcs {
			out = append(out, banKey{int32(k), a})
		}
	}
	return out
}
