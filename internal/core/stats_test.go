package core

import (
	"bytes"
	"testing"
	"time"

	"optrouter/internal/clip"
	"optrouter/internal/ilp"
	"optrouter/internal/obs"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

func statClip(t *testing.T, seed int64) *rgraph.Graph {
	t.Helper()
	opt := clip.DefaultSynth(seed)
	opt.NX, opt.NY, opt.NZ = 5, 6, 3
	opt.NumNets = 3
	c := clip.Synthesize(opt)
	g, err := rgraph.Build(c, rgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestBnBStatsPopulated checks the acceptance criterion that SolveBnB
// returns populated stats: nodes and Steiner lower-bound recomputations are
// counted, DRC time is accounted, and the termination reason is set.
func TestBnBStatsPopulated(t *testing.T) {
	// NoHeuristicSeed guarantees the search itself runs DRC checks (a
	// heuristic incumbent matching the root bound would end it at node 1).
	g := statClip(t, 11)
	sol, err := SolveBnB(g, BnBOptions{TimeLimit: 20 * time.Second, NoHeuristicSeed: true})
	if err != nil {
		t.Fatal(err)
	}
	st := sol.Stats
	if st.Nodes <= 0 || st.Nodes != sol.Nodes {
		t.Errorf("Nodes = %d (Solution.Nodes %d)", st.Nodes, sol.Nodes)
	}
	if st.SteinerSolves <= 0 {
		t.Errorf("SteinerSolves = %d, want > 0", st.SteinerSolves)
	}
	if st.DRCChecks <= 0 {
		t.Errorf("DRCChecks = %d, want > 0", st.DRCChecks)
	}
	if st.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0", st.Elapsed)
	}
	if sol.Proven && st.Termination != "optimal" && st.Termination != "infeasible" {
		t.Errorf("proven solve has termination %q", st.Termination)
	}
	if sol.Feasible && st.Incumbents <= 0 {
		t.Errorf("feasible solve recorded no incumbents")
	}
}

// TestILPStatsPopulated checks the MILP path: nodes and LP solves counted.
func TestILPStatsPopulated(t *testing.T) {
	g := mustGraph(t, crossingClip(), rgraph.Options{})
	sol, err := SolveILP(g, ilp.Options{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	st := sol.Stats
	if st.Nodes <= 0 {
		t.Errorf("Nodes = %d, want > 0", st.Nodes)
	}
	if st.LPSolves <= 0 {
		t.Errorf("LPSolves = %d, want > 0", st.LPSolves)
	}
	if st.LPTime <= 0 {
		t.Errorf("LPTime = %v, want > 0", st.LPTime)
	}
	if st.Termination == "" {
		t.Errorf("empty termination reason")
	}
}

// TestBnBProgressAndTrace wires a progress callback and tracer through a
// solve and checks both observe the search.
func TestBnBProgressAndTrace(t *testing.T) {
	g := statClip(t, 13)
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	calls := 0
	sol, err := SolveBnB(g, BnBOptions{
		TimeLimit:     20 * time.Second,
		ProgressEvery: 1,
		Progress:      func(p BnBProgress) { calls++ },
		Tracer:        tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Errorf("progress callback never invoked")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var root *obs.SpanRecord
	for i := range recs {
		if recs[i].Name == "bnb.solve" {
			root = &recs[i]
		}
	}
	if root == nil {
		t.Fatalf("no bnb.solve span in trace (%d records)", len(recs))
	}
	if v, ok := root.Attrs["feasible"]; !ok || v.(bool) != sol.Feasible {
		t.Errorf("span feasible attr = %v, solution %v", root.Attrs["feasible"], sol.Feasible)
	}
	if _, ok := root.Attrs["termination"]; !ok {
		t.Errorf("span missing termination attr")
	}
}

// TestBnBTimeLimitTermination forces a timeout on a harder rule instance
// and checks it is reported as such.
func TestBnBTimeLimitTermination(t *testing.T) {
	opt := clip.DefaultSynth(21)
	opt.NX, opt.NY, opt.NZ = 7, 10, 4
	opt.NumNets = 5
	c := clip.Synthesize(opt)
	rule8, _ := tech.RuleByName("RULE8")
	g, err := rgraph.Build(c, rgraph.Options{Rule: rule8})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveBnB(g, BnBOptions{TimeLimit: 1 * time.Nanosecond, NoHeuristicSeed: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Proven {
		t.Skip("solved within 1ns probe — instance too easy to force a timeout")
	}
	if st := sol.Stats.Termination; st != "time-limit" {
		t.Errorf("Termination = %q, want time-limit", st)
	}
}
