package core

import (
	"testing"

	"optrouter/internal/clip"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

// The Lagrangian bound must never exceed the proven optimal cost, for any
// number of subgradient rounds (validity of the dual bound).
func TestLagrangianBoundAdmissible(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		opt := clip.DefaultSynth(seed)
		opt.NX, opt.NY, opt.NZ = 5, 6, 3
		opt.NumNets = 3
		c := clip.Synthesize(opt)
		rule6, _ := tech.RuleByName("RULE6")
		g, err := rgraph.Build(c, rgraph.Options{Rule: rule6})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := SolveBnB(g, BnBOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Feasible || !sol.Proven {
			continue
		}
		own := newOwnership(g)
		ctxs := make([]*steinerCtx, len(c.Nets))
		for k := range ctxs {
			ctxs[k] = newSteinerCtx(g, own, k, nil)
		}
		lag := newLagrangian(g)
		for _, rounds := range []int{1, 4, 12} {
			lb := lag.bound(ctxs, rounds)
			if lb == -2 {
				t.Fatalf("seed %d: lagrangian claims infeasible on a feasible clip", seed)
			}
			if lb > int64(sol.Cost) {
				t.Fatalf("seed %d: lagrangian bound %d exceeds optimum %d (rounds=%d)",
					seed, lb, sol.Cost, rounds)
			}
		}
	}
}

// With no conflicts, the Lagrangian bound equals the independent bound,
// which equals the optimum.
func TestLagrangianTightWithoutConflicts(t *testing.T) {
	g := mustGraph(t, twoNetClip(), rgraph.Options{})
	own := newOwnership(g)
	ctxs := []*steinerCtx{newSteinerCtx(g, own, 0, nil), newSteinerCtx(g, own, 1, nil)}
	lag := newLagrangian(g)
	lb := lag.bound(ctxs, 3)
	if lb != 4 {
		t.Fatalf("bound = %d, want 4 (the conflict-free optimum)", lb)
	}
	if len(lag.lambdaArc) != 0 || len(lag.lambdaVert) != 0 {
		t.Fatal("penalties should stay empty without conflicts")
	}
}

// Penalties rise on genuinely contested resources: with a single M3 row,
// two column-crossing nets must share the middle horizontal arc.
func TestLagrangianPenalizesContention(t *testing.T) {
	c := &clip.Clip{
		Name: "contend", Tech: "t",
		NX: 4, NY: 1, NZ: 3, MinLayer: 1,
		Nets: []clip.Net{
			{Name: "a", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 0, Y: 0, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 2, Y: 0, Z: 1}}},
			}},
			{Name: "b", Pins: []clip.Pin{
				{Name: "s", APs: []clip.AccessPoint{{X: 3, Y: 0, Z: 1}}},
				{Name: "t", APs: []clip.AccessPoint{{X: 1, Y: 0, Z: 1}}},
			}},
		},
	}
	g := mustGraph(t, c, rgraph.Options{})
	own := newOwnership(g)
	ctxs := []*steinerCtx{newSteinerCtx(g, own, 0, nil), newSteinerCtx(g, own, 1, nil)}
	lag := newLagrangian(g)
	lb := lag.bound(ctxs, 2)
	if lb == -2 {
		t.Fatal("instance unexpectedly infeasible for a single net")
	}
	if len(lag.lambdaArc)+len(lag.lambdaVert) == 0 {
		t.Fatal("contested resources received no penalty")
	}
}
