package core

import (
	"bytes"
	"testing"

	"optrouter/internal/ilp"
	"optrouter/internal/obs"
)

// TestBnBFlightRecorder runs a real CDC-BnB solve with per-node recording on
// and checks the produced trace: it is structurally well-formed, carries one
// "node" event per recorded search action with the bound/depth attrs, and the
// solve span accounts for sampling (flight_seen/kept/dropped) and carries the
// phase breakdown traceview reads.
func TestBnBFlightRecorder(t *testing.T) {
	g := synthGraph(t, 3, "RULE7")
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	sol, err := SolveBnB(g, BnBOptions{
		Tracer: tr,
		Flight: obs.FlightOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if probs := obs.ValidateTrace(recs); len(probs) != 0 {
		t.Fatalf("trace not well-formed: %v", probs)
	}
	tree, err := obs.BuildTree(recs)
	if err != nil {
		t.Fatal(err)
	}

	var solve *obs.TraceNode
	nodeEvents := 0
	acts := map[string]int{}
	tree.Walk(func(n *obs.TraceNode) {
		if n.Name == "bnb.solve" {
			solve = n
		}
		if n.Event && n.Name == "node" {
			nodeEvents++
			acts[n.AttrString("act")]++
			if _, ok := n.AttrFloat("d"); !ok {
				t.Errorf("node event without depth attr: %+v", n.Attrs)
			}
			if _, ok := n.AttrFloat("lb"); !ok {
				t.Errorf("node event without lb attr: %+v", n.Attrs)
			}
		}
	})
	if solve == nil {
		t.Fatal("no bnb.solve span in trace")
	}
	if nodeEvents == 0 {
		t.Fatal("flight recorder produced no node events")
	}
	if acts[""] > 0 {
		t.Errorf("%d node events missing act attr", acts[""])
	}
	if acts["branch"] == 0 && sol.Nodes > 1 {
		t.Errorf("multi-node solve (%d nodes) recorded no branch events: %v", sol.Nodes, acts)
	}

	seen, _ := solve.AttrFloat("flight_seen")
	kept, _ := solve.AttrFloat("flight_kept")
	droppedAttr, _ := solve.AttrFloat("flight_dropped")
	if int(kept) != nodeEvents {
		t.Errorf("flight_kept = %v, but trace holds %d node events", kept, nodeEvents)
	}
	if int(seen) != int(kept)+int(droppedAttr) {
		t.Errorf("flight accounting: seen %v != kept %v + dropped %v", seen, kept, droppedAttr)
	}

	// The span-level phase breakdown must cover the same phases as SolveStats.
	phases, ok := solve.Attr("phases_ms").(map[string]interface{})
	if !ok {
		t.Fatalf("solve span phases_ms = %#v, want a map", solve.Attr("phases_ms"))
	}
	for name := range sol.Stats.Phases {
		if _, ok := phases[name]; !ok {
			t.Errorf("phases_ms missing phase %q (stats has it)", name)
		}
	}
}

// TestILPFlightRecorder does the same for the MILP engine's flight recorder:
// node events carry the action plus per-node LP effort, and the solve span is
// identified by the clip attr SolveILP stamps through SpanAttrs.
func TestILPFlightRecorder(t *testing.T) {
	g := synthGraph(t, 3, "RULE1")
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	sol, err := SolveILP(g, ilp.Options{
		Tracer: tr,
		Flight: obs.FlightOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatal("corpus clip became infeasible")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if probs := obs.ValidateTrace(recs); len(probs) != 0 {
		t.Fatalf("trace not well-formed: %v", probs)
	}
	tree, err := obs.BuildTree(recs)
	if err != nil {
		t.Fatal(err)
	}
	var solve *obs.TraceNode
	lpAttrEvents, nodeEvents := 0, 0
	tree.Walk(func(n *obs.TraceNode) {
		if n.Name == "ilp.solve" {
			solve = n
		}
		if n.Event && n.Name == "node" {
			nodeEvents++
			if _, ok := n.AttrFloat("lp_iters"); ok {
				lpAttrEvents++
			}
		}
	})
	if solve == nil {
		t.Fatal("no ilp.solve span in trace")
	}
	if got := solve.AttrString("clip"); got != g.Clip.Name {
		t.Errorf("ilp.solve clip attr = %q, want %q", got, g.Clip.Name)
	}
	if nodeEvents == 0 {
		t.Fatal("flight recorder produced no node events")
	}
	if lpAttrEvents == 0 {
		t.Error("no node event carries per-node LP effort attrs")
	}
}
