package core

import (
	"fmt"
	"io"
	"testing"
	"time"

	"optrouter/internal/clip"
	"optrouter/internal/ilp"
	"optrouter/internal/obs"
	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

// synthGraph builds the differential-corpus clip for one seed under one rule
// (the same geometry TestDifferentialILPvsBnB uses).
func synthGraph(tb testing.TB, seed int64, ruleName string) *rgraph.Graph {
	tb.Helper()
	opt := clip.DefaultSynth(seed)
	opt.NX, opt.NY, opt.NZ = 4, 5, 3
	opt.NumNets = 3
	opt.MaxSinks = 2
	c := clip.Synthesize(opt)
	c.Tech = "N28-12T"
	rule, ok := tech.RuleByName(ruleName)
	if !ok {
		tb.Fatalf("unknown rule %s", ruleName)
	}
	g, err := rgraph.Build(c, rgraph.Options{Rule: rule})
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// TestRouteCacheCollisionSafety pins the two properties SolveBnB's route
// cache rests on: the ban-set fingerprint is independent of map iteration
// and insertion order, and lookupRoute never returns an entry whose ban-id
// set differs from the probe — even when entries share a fingerprint bucket,
// as they would after a hash collision.
func TestRouteCacheCollisionSafety(t *testing.T) {
	// Fingerprint order-independence: the same (net, arc) set inserted in
	// different orders must fingerprint identically, and other nets' bans
	// must not contribute.
	arcs := []int32{3, 17, 255, 1024, 7}
	fwd := map[banKey]bool{}
	rev := map[banKey]bool{}
	for _, a := range arcs {
		fwd[banKey{net: 1, arc: a}] = true
	}
	for i := len(arcs) - 1; i >= 0; i-- {
		rev[banKey{net: 1, arc: arcs[i]}] = true
		rev[banKey{net: 2, arc: arcs[i] + 1}] = true // other net: must be ignored
	}
	h1, c1 := banFingerprint(1, fwd)
	h2, c2 := banFingerprint(1, rev)
	if h1 != h2 || c1 != c2 {
		t.Fatalf("fingerprint depends on insertion order or foreign nets: (%x,%d) vs (%x,%d)", h1, c1, h2, c2)
	}
	if h3, c3 := banFingerprint(3, fwd); h3 != 0 || c3 != 0 {
		t.Fatalf("empty ban subset fingerprints (%x,%d), want (0,0)", h3, c3)
	}

	// Collision safety: two entries in the same bucket with different ban-id
	// sets. The probe must select by set equality, not bucket membership.
	entries := []cachedRoute{
		{ids: []int32{5}, cost: 50, ok: true},
		{ids: []int32{9}, cost: 90, ok: true},
		{ids: []int32{5, 9}, cost: 59, ok: true},
	}
	probe := func(ids ...int32) *cachedRoute {
		bans := map[banKey]bool{banKey{net: 9, arc: 5}: true} // foreign net noise
		for _, id := range ids {
			bans[banKey{net: 0, arc: id}] = true
		}
		return lookupRoute(entries, 0, len(ids), bans)
	}
	if e := probe(5); e == nil || e.cost != 50 {
		t.Fatalf("probe {5}: got %+v, want the cost-50 entry", e)
	}
	if e := probe(9); e == nil || e.cost != 90 {
		t.Fatalf("probe {9}: got %+v, want the cost-90 entry", e)
	}
	if e := probe(5, 9); e == nil || e.cost != 59 {
		t.Fatalf("probe {5,9}: got %+v, want the cost-59 entry", e)
	}
	if e := probe(7); e != nil {
		t.Fatalf("probe {7}: got %+v, want a miss", e)
	}
	if e := probe(); e != nil {
		t.Fatalf("empty probe: got %+v, want a miss", e)
	}
}

// TestSteinerTreeAllocs pins the tentpole pooling property: after the first
// solve has sized the arena, repeated Steiner solves on the same context
// allocate nothing — DP tables, queues and the result buffer all recycle.
func TestSteinerTreeAllocs(t *testing.T) {
	g := synthGraph(t, 3, "RULE1")
	own := newOwnership(g)
	arena := NewSteinerArena()
	ctx := newSteinerCtx(g, own, 0, arena)
	if _, _, ok := steinerTree(ctx); !ok {
		t.Fatal("net 0 unroutable under RULE1")
	}
	allocs := testing.AllocsPerRun(64, func() {
		if _, _, ok := steinerTree(ctx); !ok {
			t.Error("net 0 became unroutable")
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state steinerTree allocates %.1f objects/solve, want 0", allocs)
	}
}

// TestColdVsWarmILP is the warm-start differential: over the differential
// corpus, the MILP solver with node-LP warm starts disabled must agree with
// the default warm-started solver on feasibility and optimal cost. Search
// statistics (nodes, LP iterations) are allowed to differ — warm-started LPs
// may land on a different optimal vertex and steer branching elsewhere — but
// answers may not.
func TestColdVsWarmILP(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	ruleNames := []string{"RULE1", "RULE7", "RULE8"}
	for _, seed := range seeds {
		for _, rn := range ruleNames {
			t.Run(fmt.Sprintf("seed%d-%s", seed, rn), func(t *testing.T) {
				g := synthGraph(t, seed, rn)
				warm, err := SolveILP(g, ilp.Options{TimeLimit: 60 * time.Second})
				if err != nil {
					t.Fatal(err)
				}
				cold, err := SolveILP(g, ilp.Options{TimeLimit: 60 * time.Second, NoWarmStart: true})
				if err != nil {
					t.Fatal(err)
				}
				if !warm.Proven || !cold.Proven {
					t.Skipf("no proof within budget (warm=%v cold=%v)", warm.Proven, cold.Proven)
				}
				if warm.Feasible != cold.Feasible {
					t.Fatalf("feasibility disagreement: warm=%v cold=%v", warm.Feasible, cold.Feasible)
				}
				if warm.Feasible && warm.Cost != cold.Cost {
					t.Fatalf("optimal cost disagreement: warm=%d cold=%d", warm.Cost, cold.Cost)
				}
				if cold.Stats.LPWarmStarts != 0 {
					t.Fatalf("NoWarmStart solve recorded %d warm starts", cold.Stats.LPWarmStarts)
				}
			})
		}
	}
}

// benchmarkBnBFlight measures a full CDC-BnB solve with the flight recorder
// in a given state; the Off/On pair quantifies recording overhead (the
// acceptance bar for the flight recorder is <= 5% wall on the corpus, with
// recording off by default — Off must stay indistinguishable from the
// pre-instrumentation solver).
func benchmarkBnBFlight(b *testing.B, fo obs.FlightOptions) {
	g := synthGraph(b, 3, "RULE7")
	tr := obs.NewTracer(io.Discard)
	arena := NewSteinerArena()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveBnB(g, BnBOptions{Tracer: tr, Flight: fo, Arena: arena}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBnBFlightOff(b *testing.B) { benchmarkBnBFlight(b, obs.FlightOptions{}) }
func BenchmarkBnBFlightOn(b *testing.B) {
	benchmarkBnBFlight(b, obs.FlightOptions{Enabled: true})
}

// BenchmarkParallelBnB measures the deterministic round-parallel tree search
// at several worker counts against the serial engine (par=0) on the same
// instance. On a multi-core host the par>1 columns show the scaling curve; on
// a single-core host they quantify the round-synchronous engine's overhead
// (the answers are identical either way — that is the engine's contract).
func BenchmarkParallelBnB(b *testing.B) {
	for _, par := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			g := synthGraph(b, 3, "RULE7")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol, err := SolveBnB(g, BnBOptions{Par: par})
				if err != nil {
					b.Fatal(err)
				}
				if !sol.Proven {
					b.Fatal("benchmark instance must be proven")
				}
			}
		})
	}
}

// BenchmarkPortfolioSolve races CDC-BnB against the MILP engine on one
// instance; the baseline sub-benchmarks solve the same instance with each
// engine alone, so the three columns show what the race costs (or saves)
// over committing to either engine up front.
func BenchmarkPortfolioSolve(b *testing.B) {
	g := synthGraph(b, 10, "RULE1")
	b.Run("race", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := SolvePortfolio(g, BnBOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if !sol.Proven {
				b.Fatal("race must end in a proof")
			}
		}
	})
	b.Run("bnb-alone", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveBnB(g, BnBOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ilp-alone", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveILP(g, ilp.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSteinerTree measures one pooled exact Steiner arborescence solve
// (the inner loop of every CDC-BnB node evaluation).
func BenchmarkSteinerTree(b *testing.B) {
	g := synthGraph(b, 3, "RULE1")
	own := newOwnership(g)
	arena := NewSteinerArena()
	ctx := newSteinerCtx(g, own, 0, arena)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := steinerTree(ctx); !ok {
			b.Fatal("net 0 unroutable")
		}
	}
}
