package core

import (
	"fmt"
	"strings"

	"optrouter/internal/rgraph"
	"optrouter/internal/tech"
)

// RenderASCII draws a routing solution layer by layer, one character cell
// per grid vertex: digits/letters identify nets, '#' marks obstacles, '*'
// marks via landings, '.' is free space. It is the textual analogue of the
// paper's Fig. 7 clip snapshots and is used by cmd/optroute and the examples.
func RenderASCII(g *rgraph.Graph, sol *Solution) string {
	netChar := func(k int) byte {
		const chars = "0123456789abcdefghijklmnopqrstuvwxyz"
		if k < len(chars) {
			return chars[k]
		}
		return '+'
	}

	type cell struct {
		ch  byte
		via bool
	}
	layers := make([][]cell, g.NZ)
	for z := range layers {
		layers[z] = make([]cell, g.NX*g.NY)
		for i := range layers[z] {
			layers[z][i] = cell{ch: '.'}
		}
	}
	for v := int32(0); v < int32(g.NumGrid); v++ {
		if g.Blocked[v] {
			x, y, z := g.XYZ(v)
			layers[z][y*g.NX+x].ch = '#'
		}
	}
	// Pins (lowercase p overlaid later by routes if used).
	for k := range g.Clip.Nets {
		for _, pin := range g.Clip.Nets[k].Pins {
			for _, ap := range pin.APs {
				layers[ap.Z][ap.Y*g.NX+ap.X].ch = netChar(k)
			}
		}
	}
	if sol != nil && sol.Feasible {
		for k, arcs := range sol.NetArcs {
			for _, aid := range arcs {
				a := g.Arcs[aid]
				for _, v := range []int32{a.From, a.To} {
					if !g.IsGrid(v) {
						continue
					}
					x, y, z := g.XYZ(v)
					c := &layers[z][y*g.NX+x]
					c.ch = netChar(k)
					if a.Kind.IsVia() {
						c.via = true
					}
				}
			}
		}
	}

	var sb strings.Builder
	for z := g.NZ - 1; z >= g.Clip.MinLayer; z-- {
		dir := "H"
		if rgraph.LayerDir(z) == tech.Vertical {
			dir = "V"
		}
		fmt.Fprintf(&sb, "M%d (%s):\n", z+1, dir)
		for y := g.NY - 1; y >= 0; y-- {
			for x := 0; x < g.NX; x++ {
				c := layers[z][y*g.NX+x]
				sb.WriteByte(c.ch)
				if c.via {
					sb.WriteByte('*')
				} else {
					sb.WriteByte(' ')
				}
			}
			sb.WriteByte('\n')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
