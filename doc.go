// Package optrouter reproduces "Evaluation of BEOL Design Rule Impacts
// Using An Optimal ILP-based Detailed Router" (Han, Kahng, Lee; DAC 2015):
// a provably optimal, design-rule-aware switchbox detailed router and the
// full evaluation methodology built around it.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmark harness in bench_test.go regenerates the data
// behind every table and figure of the paper.
package optrouter
