// Benchmark harness: one benchmark per table and figure of the paper, plus
// ablation benches for the design choices called out in DESIGN.md. Run:
//
//	go test -bench=. -benchmem
//
// Reported custom metrics carry the experiment's headline numbers (delta
// costs, infeasible counts, model sizes) so a bench run regenerates the
// paper's data; EXPERIMENTS.md records a reference run.
package optrouter

import (
	"fmt"
	"io"
	"testing"
	"time"

	"optrouter/internal/cells"
	"optrouter/internal/clip"
	"optrouter/internal/core"
	"optrouter/internal/exp"
	"optrouter/internal/extract"
	"optrouter/internal/ilp"
	"optrouter/internal/improve"
	"optrouter/internal/lp"
	"optrouter/internal/netlist"
	"optrouter/internal/obs"
	"optrouter/internal/place"
	"optrouter/internal/rgraph"
	"optrouter/internal/route"
	"optrouter/internal/tech"
)

// benchTestbeds caches one testbed per technology across benchmarks.
var benchTestbeds = map[string]*exp.Testbed{}

func testbedFor(b *testing.B, t *tech.Technology) *exp.Testbed {
	b.Helper()
	if tb, ok := benchTestbeds[t.Name]; ok {
		return tb
	}
	tb, err := exp.BuildTestbed(t, exp.QuickTestbed())
	if err != nil {
		b.Fatal(err)
	}
	benchTestbeds[t.Name] = tb
	return tb
}

// BenchmarkTable2BenchmarkDesigns regenerates the Table 2 design matrix:
// synthesize, place and route each benchmark design and report its size and
// utilization.
func BenchmarkTable2BenchmarkDesigns(b *testing.B) {
	for _, t := range tech.AllTechnologies() {
		b.Run(t.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				delete(benchTestbeds, t.Name)
				tb := testbedFor(b, t)
				if i == 0 {
					for _, r := range tb.Records {
						b.Logf("Table2 %s %s util=%.0f%%: inst=%d nets=%d achUtil=%.1f%% clips=%d",
							r.Tech, r.Design, r.Util*100, r.Insts, r.Nets, r.AchUtil*100, r.Clips)
					}
				}
			}
		})
	}
}

// BenchmarkFigure8PinCost regenerates the Fig. 8 pin-cost distributions:
// score and rank every extracted clip per design/utilization.
func BenchmarkFigure8PinCost(b *testing.B) {
	tb := testbedFor(b, tech.N7T9()) // the paper's Fig. 8 uses N7-9T
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0.0
		for key, costs := range tb.PinCosts {
			for _, c := range costs {
				total += c
			}
			if i == 0 {
				top := costs
				if len(top) > 5 {
					top = top[:5]
				}
				b.Logf("Fig8 %s: %d clips, top=%.1f", key, len(costs), top)
			}
		}
		if total <= 0 {
			b.Fatal("no pin costs")
		}
	}
}

// BenchmarkTable3Rules regenerates the Table 3 rule set (trivially cheap;
// present for completeness of the per-table index).
func BenchmarkTable3Rules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rules := tech.StandardRules()
		if len(rules) != 11 {
			b.Fatal("Table 3 must have 11 rules")
		}
	}
}

// BenchmarkFigure10DeltaCost regenerates the Fig. 10 delta-cost study at
// reduced scale: the top clips of each technology solved optimally under
// every applicable rule. Custom metrics report per-rule infeasible counts.
func BenchmarkFigure10DeltaCost(b *testing.B) {
	for _, t := range tech.AllTechnologies() {
		b.Run(t.Name, func(b *testing.B) {
			tb := testbedFor(b, t)
			clips := tb.Top
			if len(clips) > 4 {
				clips = clips[:4]
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				curves, _, err := exp.DeltaCostStudy(t, clips, exp.SolveOptions{PerClipTimeout: 5 * time.Second})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					for _, cu := range curves {
						max := 0.0
						if n := len(cu.Deltas); n > 0 {
							max = cu.Deltas[n-1]
						}
						b.Logf("Fig10 %s %s: maxDelta=%.0f infeasible=%d unproven=%d",
							t.Name, cu.Rule, max, cu.Infeasible, cu.Unproven)
					}
				}
			}
		})
	}
}

// BenchmarkFigure9PinAccess regenerates the Fig. 9 pin-access analysis:
// NAND2X1 escape routing per technology under via restrictions.
func BenchmarkFigure9PinAccess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, t := range tech.AllTechnologies() {
			rs, err := exp.PinAccessStudy(t, "NAND2X1", exp.SolveOptions{PerClipTimeout: 20 * time.Second})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				for _, r := range rs {
					if r.Rule == "RULE1" || r.Rule == "RULE6" || r.Rule == "RULE9" {
						b.Logf("Fig9 %s %s: feasible=%v cost=%d", t.Name, r.Rule, r.Feasible, r.Cost)
					}
				}
			}
		}
	}
}

// BenchmarkValidationVsHeuristic regenerates the Sec. 4.2 validation:
// OptRouter vs the heuristic ("commercial") router; delta must be <= 0.
func BenchmarkValidationVsHeuristic(b *testing.B) {
	tb := testbedFor(b, tech.N28T12())
	clips := tb.Top
	if len(clips) > 5 {
		clips = clips[:5]
	}
	b.ResetTimer()
	sum, n := 0, 0
	for i := 0; i < b.N; i++ {
		vals, err := exp.ValidationStudy(clips, exp.SolveOptions{PerClipTimeout: 5 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range vals {
			if v.Delta > 0 {
				b.Fatalf("optimal beat by heuristic on %s", v.Clip)
			}
			sum += v.Delta
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(float64(sum)/float64(n), "avgDelta")
	}
}

// BenchmarkModelSizeAnalysis regenerates the Sec. 4 variable/constraint
// analysis: ILP dimensions per rule family on one clip.
func BenchmarkModelSizeAnalysis(b *testing.B) {
	opt := clip.DefaultSynth(3)
	opt.NX, opt.NY, opt.NZ = 7, 10, 4
	opt.NumNets = 5
	c := clip.Synthesize(opt)
	rules := []tech.RuleConfig{
		{Name: "RULE1"},
		{Name: "RULE6", BlockedVias: 4},
		{Name: "RULE9", BlockedVias: 8},
		{Name: "RULE3", SADPMinLayer: 3},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sizes, err := exp.ModelSizeStudy(c, rules)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range sizes {
				b.Logf("ModelSize %s: vars=%d cons=%d (e=%d f=%d p=%d prod=%d)",
					s.Rule, s.Vars, s.Constraints, s.EVars, s.FVars, s.PVars, s.ProductVars)
			}
		}
	}
}

// solveSwitchbox is the Sec. 5 runtime experiment body.
func solveSwitchbox(b *testing.B, nx, ny, nz, nets int, rule tech.RuleConfig) {
	b.Helper()
	opt := clip.DefaultSynth(7)
	opt.NX, opt.NY, opt.NZ = nx, ny, nz
	opt.NumNets = nets
	opt.MaxSinks = 2
	c := clip.Synthesize(opt)
	g, err := rgraph.Build(c, rgraph.Options{Rule: rule})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := core.SolveBnB(g, core.BnBOptions{TimeLimit: 30 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%dx%dx%d %s: %v proven=%v", nx, ny, nz, rule.Name, sol, sol.Proven)
		}
	}
}

// BenchmarkRuntime7x10 mirrors the paper's Sec. 5 runtime report for a
// 7-track x 10-track switchbox, with and without SADP + via restriction
// rules (paper: 1047s vs 842s on CPLEX; here at reduced depth on the exact
// combinatorial solver).
func BenchmarkRuntime7x10(b *testing.B) {
	rule8, _ := tech.RuleByName("RULE8")
	b.Run("NoRules", func(b *testing.B) { solveSwitchbox(b, 7, 10, 4, 5, tech.RuleConfig{Name: "RULE1"}) })
	b.Run("SADP+ViaRules", func(b *testing.B) { solveSwitchbox(b, 7, 10, 4, 5, rule8) })
}

// BenchmarkRuntime10x10 mirrors the paper's 10x10 runtime report
// (paper: 1340s vs 925s).
func BenchmarkRuntime10x10(b *testing.B) {
	rule8, _ := tech.RuleByName("RULE8")
	b.Run("NoRules", func(b *testing.B) { solveSwitchbox(b, 10, 10, 4, 5, tech.RuleConfig{Name: "RULE1"}) })
	b.Run("SADP+ViaRules", func(b *testing.B) { solveSwitchbox(b, 10, 10, 4, 5, rule8) })
}

// BenchmarkAblationILPvsBnB compares the two exact solvers on the same
// instance (DESIGN.md ablation: general MILP vs conflict-driven BnB).
func BenchmarkAblationILPvsBnB(b *testing.B) {
	opt := clip.DefaultSynth(4)
	opt.NX, opt.NY, opt.NZ = 4, 5, 3
	opt.NumNets = 3
	c := clip.Synthesize(opt)
	g, err := rgraph.Build(c, rgraph.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("BnB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveBnB(g, core.BnBOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ILP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveILP(g, ilp.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationHeuristicSeed measures the value of seeding the BnB with
// the heuristic router's incumbent.
func BenchmarkAblationHeuristicSeed(b *testing.B) {
	opt := clip.DefaultSynth(9)
	opt.NX, opt.NY, opt.NZ = 6, 7, 4
	opt.NumNets = 4
	c := clip.Synthesize(opt)
	rule6, _ := tech.RuleByName("RULE6")
	g, err := rgraph.Build(c, rgraph.Options{Rule: rule6})
	if err != nil {
		b.Fatal(err)
	}
	for _, seeded := range []bool{true, false} {
		name := "Seeded"
		if !seeded {
			name = "Unseeded"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sol, err := core.SolveBnB(g, core.BnBOptions{NoHeuristicSeed: !seeded, TimeLimit: 20 * time.Second})
				if err != nil {
					b.Fatal(err)
				}
				_ = sol
			}
		})
	}
}

// BenchmarkSec5LocalImprovement regenerates the footnote-6 / Section 5
// suboptimality assessment: optimally re-route windows of the reference
// route and report the recoverable cost (paper: avg delta -10..-15 per
// clip; deltas must never be positive).
func BenchmarkSec5LocalImprovement(b *testing.B) {
	lib := cells.Generate(tech.N28T12())
	nl, err := netlist.Generate(lib, netlist.M0Class(250, 1))
	if err != nil {
		b.Fatal(err)
	}
	pl, err := place.Place(lib, nl, place.Options{TargetUtil: 0.92})
	if err != nil {
		b.Fatal(err)
	}
	res, err := route.Route(pl, route.Options{Layers: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := improve.Design(res, improve.Options{
			Extract:        extract.Options{MaxNets: 5},
			PerClipTimeout: 5 * time.Second,
			MaxWindows:     12,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range r.Windows {
			if w.Proven && w.Delta > 0 {
				b.Fatalf("positive delta on %s", w.Clip)
			}
		}
		if i == 0 {
			b.ReportMetric(r.AvgDelta(), "avgDelta")
			b.Logf("Sec5 improvement: %d windows, %d improvable, base %d -> optimal %d",
				r.Tried, r.Improved, r.TotalBase, r.TotalOptimal)
		}
	}
}

// BenchmarkAblationViaWeight sweeps the via weighting of the routing cost
// (the paper notes OptRouter "sensibly handles alternative routing cost
// definitions") and reports the optimal via count at each weight.
func BenchmarkAblationViaWeight(b *testing.B) {
	opt := clip.DefaultSynth(8)
	opt.NX, opt.NY, opt.NZ = 6, 7, 4
	opt.NumNets = 4
	c := clip.Synthesize(opt)
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("ViaWeight%d", w), func(b *testing.B) {
			g, err := rgraph.Build(c, rgraph.Options{ViaCost: w})
			if err != nil {
				b.Fatal(err)
			}
			vias := 0
			for i := 0; i < b.N; i++ {
				sol, err := core.SolveBnB(g, core.BnBOptions{TimeLimit: 20 * time.Second})
				if err != nil {
					b.Fatal(err)
				}
				if sol.Feasible {
					vias = sol.Vias
				}
			}
			b.ReportMetric(float64(vias), "vias")
		})
	}
}

// BenchmarkAblationUnidirVsBidir quantifies the cost of unidirectional
// patterning by routing the same clips with and without the orthogonal
// arcs (a BEOL stack choice the framework evaluates).
func BenchmarkAblationUnidirVsBidir(b *testing.B) {
	opt := clip.DefaultSynth(13)
	opt.NX, opt.NY, opt.NZ = 6, 7, 4
	opt.NumNets = 4
	c := clip.Synthesize(opt)
	for _, bidir := range []bool{false, true} {
		name := "Unidirectional"
		if bidir {
			name = "Bidirectional"
		}
		b.Run(name, func(b *testing.B) {
			g, err := rgraph.Build(c, rgraph.Options{Bidirectional: bidir})
			if err != nil {
				b.Fatal(err)
			}
			cost := 0
			for i := 0; i < b.N; i++ {
				sol, err := core.SolveBnB(g, core.BnBOptions{TimeLimit: 20 * time.Second})
				if err != nil {
					b.Fatal(err)
				}
				if sol.Feasible {
					cost = sol.Cost
				}
			}
			b.ReportMetric(float64(cost), "cost")
		})
	}
}

// BenchmarkSec5MetricComparison regenerates the "metric beyond Taghavi"
// future-work study: rank correlation of the pin-cost metric vs the
// demand-based congestion score against realized RULE8 delta-costs.
func BenchmarkSec5MetricComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mc, err := exp.MetricStudy(tech.N28T8(), exp.MetricStudyOptions{
			Size: 200, MaxWindows: 10, Budget: 5 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(mc.PinCostCorr, "pinCostCorr")
			b.ReportMetric(mc.CongestionCorr, "congestionCorr")
			b.Logf("MetricStudy: %d windows, pinCost corr=%.2f congestion corr=%.2f",
				len(mc.Windows), mc.PinCostCorr, mc.CongestionCorr)
		}
	}
}

// BenchmarkLPSimplex is a microbenchmark of the simplex engine on a dense
// transportation LP.
func BenchmarkLPSimplex(b *testing.B) {
	build := func() *lp.Problem {
		p := lp.NewProblem()
		const S, D = 12, 18
		vars := make([][]int, S)
		for i := 0; i < S; i++ {
			vars[i] = make([]int, D)
			for j := 0; j < D; j++ {
				vars[i][j] = p.AddVariable(0, lp.Inf, float64((i*7+j*3)%11+1))
			}
		}
		for i := 0; i < S; i++ {
			var cs []lp.Coef
			for j := 0; j < D; j++ {
				cs = append(cs, lp.Coef{Var: vars[i][j], Val: 1})
			}
			p.AddConstraint(cs, lp.EQ, float64(10+i))
		}
		for j := 0; j < D; j++ {
			var cs []lp.Coef
			for i := 0; i < S; i++ {
				cs = append(cs, lp.Coef{Var: vars[i][j], Val: 1})
			}
			p.AddConstraint(cs, lp.LE, float64(9+j))
		}
		return p
	}
	p := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := p.Solve(lp.Options{})
		if res.Status != lp.Optimal {
			b.Fatalf("status %v", res.Status)
		}
	}
}

// BenchmarkILPKnapsack is a microbenchmark of the branch-and-bound on a
// 24-item knapsack.
func BenchmarkILPKnapsack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := ilp.NewModel()
		var cs []lp.Coef
		for j := 0; j < 24; j++ {
			v := m.AddBinary(-float64(3 + (j*7)%13))
			cs = append(cs, lp.Coef{Var: v, Val: float64(2 + (j*5)%9)})
		}
		m.AddConstraint(cs, lp.LE, 41)
		res := m.Solve(ilp.Options{IntegralObjective: true})
		if res.Status != ilp.Optimal {
			b.Fatalf("status %v", res.Status)
		}
	}
}

// BenchmarkRoutingGraphBuild measures graph construction at the paper's
// clip geometry across rule families.
func BenchmarkRoutingGraphBuild(b *testing.B) {
	opt := clip.DefaultSynth(5)
	opt.NX, opt.NY, opt.NZ = 7, 10, 8
	opt.NumNets = 8
	c := clip.Synthesize(opt)
	rule8, _ := tech.RuleByName("RULE8")
	for i := 0; i < b.N; i++ {
		g, err := rgraph.Build(c, rgraph.Options{Rule: rule8})
		if err != nil {
			b.Fatal(err)
		}
		if g.NumGrid != 7*10*8 {
			b.Fatal("bad grid")
		}
	}
}

// BenchmarkObsOverhead measures the cost of full instrumentation (metrics
// registry, span tracer, per-node progress callbacks) on a representative
// exact solve. The Off/On delta is the observability overhead; it must stay
// under ~2% so -stats/-trace can be left on for production runs.
func BenchmarkObsOverhead(b *testing.B) {
	opt := clip.DefaultSynth(9)
	opt.NX, opt.NY, opt.NZ = 6, 7, 4
	opt.NumNets = 4
	c := clip.Synthesize(opt)
	rule6, _ := tech.RuleByName("RULE6")
	g, err := rgraph.Build(c, rgraph.Options{Rule: rule6})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveBnB(g, core.BnBOptions{TimeLimit: 30 * time.Second}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("On", func(b *testing.B) {
		m := obs.NewRegistry()
		tr := obs.NewTracer(io.Discard)
		for i := 0; i < b.N; i++ {
			sol, err := core.SolveBnB(g, core.BnBOptions{
				TimeLimit:     30 * time.Second,
				Tracer:        tr,
				ProgressEvery: 1,
				Progress:      func(p core.BnBProgress) {},
			})
			if err != nil {
				b.Fatal(err)
			}
			m.Counter("nodes").Add(int64(sol.Stats.Nodes))
			m.Histogram("solve_ms").Observe(float64(sol.Runtime.Microseconds()) / 1000)
		}
	})
}

// BenchmarkHeuristicRouter measures the stand-in commercial router at clip
// scale.
func BenchmarkHeuristicRouter(b *testing.B) {
	opt := clip.DefaultSynth(6)
	opt.NX, opt.NY, opt.NZ = 7, 10, 4
	opt.NumNets = 6
	c := clip.Synthesize(opt)
	g, err := rgraph.Build(c, rgraph.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SolveHeuristic(g, core.HeuristicOptions{})
	}
}

var _ = fmt.Sprintf // reserved for debug formatting in bench logs
